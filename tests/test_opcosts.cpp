/**
 * @file
 * Operator-cost fidelity tests (Table 3 of the paper): trace a single
 * tower operation symbolically and count the Fp-level machine
 * operations it decomposes into. This pins the compiler's lowering to
 * the costs the paper's design space is built on:
 *   M_{2d} = 4 M_d (schoolbook) or 3 M_d (Karatsuba)
 *   M_{3d} = 9 M_d (schoolbook) or 6 M_d (Karatsuba)
 *   S_{2d} = 2 M_d (complex) / 2 S_d + 1 M_d (schoolbook)
 *   S_{3d} = 2 M_d + 3 S_d (CH-SQR3), 1 M_d + 4 S_d (+halvings, CH-SQR2)
 */
#include <gtest/gtest.h>

#include "compiler/symfp.h"
#include "field/tower.h"
#include "pairing/cache.h"

namespace finesse {
namespace {

struct OpCount
{
    size_t mul = 0, sqr = 0, linear = 0, constMul = 0;
};

/** Trace builder harness around one symbolic tower. */
class CostHarness
{
  public:
    CostHarness()
        : sys_(curveSystem12("BN254N")), tb_(sys_.info().p), sctx_{&tb_}
    {}

    template <typename Fn>
    OpCount
    countOps(const VariantConfig &vc, Fn &&body)
    {
        Tower12<SymFp> tower;
        buildTower(tower, &sctx_, sys_.towerParams(), vc);
        const size_t mark = markSize();
        body(tower);
        return tally(mark);
    }

    SymFp
    freshFp()
    {
        return SymFp{tb_.emit(Op::Icv, tb_.fresh()), &sctx_};
    }

  private:
    size_t
    markSize()
    {
        // Finish is destructive; track counts via a snapshot trace.
        return snapshot_.size();
    }

    OpCount
    tally(size_t)
    {
        Module m = tb_.finish();
        OpCount c;
        for (const Inst &inst : m.body) {
            switch (unitOf(inst.op)) {
              case UnitClass::Mul:
                if (inst.op == Op::Sqr)
                    c.sqr++;
                else
                    c.mul++;
                break;
              case UnitClass::Linear:
                if (inst.op != Op::Icv && inst.op != Op::Cvt)
                    c.linear++;
                break;
              default:
                break;
            }
        }
        // Rebuild the builder for the next measurement.
        tb_ = TraceBuilder(sys_.info().p);
        sctx_ = SymFp::Ctx{&tb_};
        return c;
    }

    const CurveSystem12 &sys_;
    TraceBuilder tb_;
    SymFp::Ctx sctx_;
    std::vector<Inst> snapshot_;
};

using SFp2 = Tower12<SymFp>::Fp2T;
using SFp6 = Tower12<SymFp>::Fp6T;
using SFp12 = Tower12<SymFp>::Fp12T;

template <typename F, typename Ctx>
F
freshElem(CostHarness &h, const Ctx *ctx)
{
    if constexpr (std::is_same_v<F, SymFp>) {
        (void)ctx;
        return h.freshFp();
    } else if constexpr (requires(F f) { f.c2(); }) {
        using B = std::decay_t<decltype(std::declval<F>().c0())>;
        return F{freshElem<B>(h, ctx->base), freshElem<B>(h, ctx->base),
                 freshElem<B>(h, ctx->base), ctx};
    } else {
        using B = std::decay_t<decltype(std::declval<F>().c0())>;
        return F{freshElem<B>(h, ctx->base), freshElem<B>(h, ctx->base),
                 ctx};
    }
}

TEST(OpCosts, Fp2MulVariants)
{
    CostHarness h;
    VariantConfig karat;
    karat.levels[2] = {MulVariant::Karatsuba, SqrVariant::Complex};
    const OpCount k = h.countOps(karat, [&](Tower12<SymFp> &t) {
        auto a = freshElem<SFp2>(h, &t.fp2);
        auto b = freshElem<SFp2>(h, &t.fp2);
        (void)a.mul(b);
    });
    EXPECT_EQ(k.mul + k.sqr, 3u); // Karatsuba: 3 M_1

    VariantConfig school;
    school.levels[2] = {MulVariant::Schoolbook, SqrVariant::Schoolbook};
    const OpCount s = h.countOps(school, [&](Tower12<SymFp> &t) {
        auto a = freshElem<SFp2>(h, &t.fp2);
        auto b = freshElem<SFp2>(h, &t.fp2);
        (void)a.mul(b);
    });
    EXPECT_EQ(s.mul + s.sqr, 4u); // Schoolbook: 4 M_1
    // Karatsuba spends more linear ops than schoolbook.
    EXPECT_GT(k.linear, s.linear);
}

TEST(OpCosts, Fp2SqrVariants)
{
    CostHarness h;
    VariantConfig complex;
    complex.levels[2] = {MulVariant::Karatsuba, SqrVariant::Complex};
    const OpCount c = h.countOps(complex, [&](Tower12<SymFp> &t) {
        (void)freshElem<SFp2>(h, &t.fp2).sqr();
    });
    EXPECT_EQ(c.mul, 2u); // complex: 2 M_1
    EXPECT_EQ(c.sqr, 0u);

    VariantConfig school;
    school.levels[2] = {MulVariant::Karatsuba, SqrVariant::Schoolbook};
    const OpCount s = h.countOps(school, [&](Tower12<SymFp> &t) {
        (void)freshElem<SFp2>(h, &t.fp2).sqr();
    });
    EXPECT_EQ(s.sqr, 2u); // schoolbook: 2 S_1 + 1 M_1
    EXPECT_EQ(s.mul, 1u);
}

TEST(OpCosts, Fp6MulOverFp2)
{
    // Count in units of Fp2 muls: karatsuba-on-2 means M_1-count = 3x.
    CostHarness h;
    VariantConfig cfg;
    cfg.levels[2] = {MulVariant::Karatsuba, SqrVariant::Complex};
    cfg.levels[6] = {MulVariant::Karatsuba, SqrVariant::CHSqr3};
    const OpCount k = h.countOps(cfg, [&](Tower12<SymFp> &t) {
        auto a = freshElem<SFp6>(h, &t.fp6);
        auto b = freshElem<SFp6>(h, &t.fp6);
        (void)a.mul(b);
    });
    EXPECT_EQ(k.mul + k.sqr, 6u * 3u); // 6 M_2 = 18 M_1

    cfg.levels[6].mul = MulVariant::Schoolbook;
    const OpCount s = h.countOps(cfg, [&](Tower12<SymFp> &t) {
        auto a = freshElem<SFp6>(h, &t.fp6);
        auto b = freshElem<SFp6>(h, &t.fp6);
        (void)a.mul(b);
    });
    EXPECT_EQ(s.mul + s.sqr, 9u * 3u); // 9 M_2
}

TEST(OpCosts, Fp6SqrVariants)
{
    CostHarness h;
    VariantConfig cfg;
    cfg.levels[2] = {MulVariant::Karatsuba, SqrVariant::Complex};
    cfg.levels[6] = {MulVariant::Karatsuba, SqrVariant::CHSqr3};
    const OpCount ch3 = h.countOps(cfg, [&](Tower12<SymFp> &t) {
        (void)freshElem<SFp6>(h, &t.fp6).sqr();
    });
    // CH-SQR3: 2 M_2 + 3 S_2 = 2*3 + 3*2 = 12 multiplicative Fp ops.
    EXPECT_EQ(ch3.mul + ch3.sqr, 12u);

    cfg.levels[6].sqr = SqrVariant::CHSqr2;
    const OpCount ch2 = h.countOps(cfg, [&](Tower12<SymFp> &t) {
        (void)freshElem<SFp6>(h, &t.fp6).sqr();
    });
    // CH-SQR2: 1 M_2 + 4 S_2 (+ 2 halvings = const muls): 3 + 8 + 4.
    EXPECT_EQ(ch2.mul + ch2.sqr, 15u);

    cfg.levels[6].sqr = SqrVariant::Schoolbook;
    const OpCount sb = h.countOps(cfg, [&](Tower12<SymFp> &t) {
        (void)freshElem<SFp6>(h, &t.fp6).sqr();
    });
    // Schoolbook: 3 M_2 + 3 S_2 = 9 + 6 = 15.
    EXPECT_EQ(sb.mul + sb.sqr, 15u);
}

TEST(OpCosts, Fp12MulFullTower)
{
    CostHarness h;
    VariantConfig karat; // defaults: all karatsuba
    const OpCount k = h.countOps(karat, [&](Tower12<SymFp> &t) {
        auto a = freshElem<SFp12>(h, &t.fp12);
        auto b = freshElem<SFp12>(h, &t.fp12);
        (void)a.mul(b);
    });
    // 3 M_6 = 3 * 6 M_2 = 18 M_2 = 54 M_1 all-Karatsuba.
    EXPECT_EQ(k.mul + k.sqr, 54u);
}

TEST(OpCosts, AdjIsLinear)
{
    // Multiplication by the adjoined element must cost only linear ops
    // (Table 3's B in O(log p)).
    CostHarness h;
    const OpCount c = h.countOps(VariantConfig{}, [&](Tower12<SymFp> &t) {
        (void)freshElem<SFp6>(h, &t.fp6).mulByGen();
    });
    EXPECT_EQ(c.mul + c.sqr, 0u);
    EXPECT_GT(c.linear, 0u);
}

} // namespace
} // namespace finesse
