/**
 * @file
 * Config parser and config -> CompileOptions bridge tests.
 */
#include <gtest/gtest.h>

#include "core/options.h"

namespace finesse {
namespace {

TEST(Config, ParsesTypesAndComments)
{
    const Config cfg = Config::parse(R"(
# a comment
curve = BLS12-381
hw.long_lat = 26     # trailing comment
hw.beta = 0.125
optimize = false
name = hello world
)");
    EXPECT_EQ(cfg.getString("curve"), "BLS12-381");
    EXPECT_EQ(cfg.getInt("hw.long_lat"), 26);
    EXPECT_DOUBLE_EQ(cfg.getDouble("hw.beta"), 0.125);
    EXPECT_FALSE(cfg.getBool("optimize", true));
    EXPECT_EQ(cfg.getString("name"), "hello world");
    EXPECT_EQ(cfg.getInt("missing", 7), 7);
    EXPECT_FALSE(cfg.has("missing"));
}

TEST(Config, RejectsMalformed)
{
    EXPECT_THROW(Config::parse("novalue\n"), FatalError);
    EXPECT_THROW(Config::parse("= 3\n"), FatalError);
    const Config cfg = Config::parse("x = abc\n");
    EXPECT_THROW(cfg.getInt("x"), FatalError);
    EXPECT_THROW(cfg.getBool("x"), FatalError);
}

TEST(ConfigBridge, BuildsCompileOptions)
{
    const Config cfg = Config::parse(R"(
curve = BLS12-446
optimize = true
schedule = false
part = miller
hw.long_lat = 26
hw.issue_width = 3
hw.lin_units = 2
hw.banks = 4
hw.fifo = true
variants.mul2 = schoolbook
variants.sqr6 = ch-sqr2
variants.mul12 = karatsuba
variants.g2_coords = projective
)");
    EXPECT_EQ(curveFromConfig(cfg), "BLS12-446");
    const CompileOptions opt = optionsFromConfig(cfg);
    EXPECT_FALSE(opt.listSchedule);
    EXPECT_EQ(opt.part, TracePart::MillerOnly);
    EXPECT_EQ(opt.hw.longLat, 26);
    EXPECT_EQ(opt.hw.issueWidth, 3);
    EXPECT_EQ(opt.hw.numBanks, 4);
    EXPECT_TRUE(opt.hw.writebackFifo);
    EXPECT_EQ(opt.variants.level(2).mul, MulVariant::Schoolbook);
    EXPECT_EQ(opt.variants.level(6).sqr, SqrVariant::CHSqr2);
    EXPECT_EQ(opt.variants.level(12).mul, MulVariant::Karatsuba);
    EXPECT_EQ(opt.variants.g2Coords, CoordSystem::Projective);
}

TEST(ConfigBridge, DefaultsMatchPaperModel)
{
    const CompileOptions opt = optionsFromConfig(Config{});
    EXPECT_EQ(opt.hw.longLat, 38);
    EXPECT_EQ(opt.hw.shortLat, 8);
    EXPECT_EQ(opt.hw.issueWidth, 1);
    EXPECT_TRUE(opt.optimize);
    EXPECT_TRUE(opt.listSchedule);
    EXPECT_EQ(opt.part, TracePart::Full);
}

TEST(ConfigBridge, RejectsBadEnums)
{
    EXPECT_THROW(
        optionsFromConfig(Config::parse("variants.mul2 = toom\n")),
        FatalError);
    EXPECT_THROW(optionsFromConfig(Config::parse("part = half\n")),
                 FatalError);
}

} // namespace
} // namespace finesse
