/**
 * @file
 * Differential tests for the fixed-limb Montgomery kernels
 * (bigint/montkernel.h) against the generic runtime-width oracle and the
 * BigInt reference, across every supported width and both vtable
 * flavors (spare-top-bit and general).
 */
#include <gtest/gtest.h>

#include "bigint/bigint.h"
#include "bigint/mont.h"
#include "support/rng.h"

namespace finesse {
namespace {

/** Random odd modulus of exactly @p bits bits. */
BigInt
randomOddModulus(Rng &rng, int bits)
{
    BigInt p = BigInt::randomBits(rng, bits);
    if (p.isEven())
        p = p + BigInt(u64{1});
    return p;
}

/** Raw residue (Montgomery-domain limbs) from a BigInt in [0, p). */
Residue
rawResidue(const MontCtx &ctx, const BigInt &v)
{
    Residue r{};
    v.toLimbs(r.data(), ctx.limbCount());
    return r;
}

/**
 * Check mul/sqr/add/sub/neg on one operand pair: the kernel path must be
 * bit-identical to the generic oracle, and both must match BigInt.
 */
void
checkOps(const MontCtx &ctx, const Residue &a, const Residue &b)
{
    const BigInt &p = ctx.modulus();
    const size_t n = ctx.limbCount();
    const BigInt av = BigInt::fromLimbs(a.data(), n);
    const BigInt bv = BigInt::fromLimbs(b.data(), n);
    const BigInt r = BigInt(u64{1}) << static_cast<int>(64 * n);
    const BigInt rInv = r.mod(p).invMod(p);

    Residue k{}, g{};
    ctx.mul(k, a, b);
    ctx.mulGeneric(g, a, b);
    EXPECT_EQ(k, g);
    EXPECT_EQ(BigInt::fromLimbs(k.data(), n), (av * bv * rInv).mod(p));

    ctx.sqr(k, a);
    ctx.sqrGeneric(g, a);
    EXPECT_EQ(k, g);
    EXPECT_EQ(BigInt::fromLimbs(k.data(), n), (av * av * rInv).mod(p));

    ctx.add(k, a, b);
    ctx.addGeneric(g, a, b);
    EXPECT_EQ(k, g);
    EXPECT_EQ(BigInt::fromLimbs(k.data(), n), (av + bv).mod(p));

    ctx.sub(k, a, b);
    ctx.subGeneric(g, a, b);
    EXPECT_EQ(k, g);
    EXPECT_EQ(BigInt::fromLimbs(k.data(), n), (av - bv).mod(p));

    ctx.neg(k, a);
    ctx.negGeneric(g, a);
    EXPECT_EQ(k, g);
    EXPECT_EQ(BigInt::fromLimbs(k.data(), n), (-av).mod(p));

    // In-place aliasing: r == a.
    Residue ka = a;
    ctx.mul(ka, ka, b);
    ctx.mulGeneric(g, a, b);
    EXPECT_EQ(ka, g);
}

TEST(MontKernel, AllWidthsMatchOracleAndBigInt)
{
    Rng rng(101);
    for (int w = 1; w <= static_cast<int>(kMaxLimbs); ++w) {
        // One modulus with the top bit set (general-path vtable) and one
        // with two spare top bits (spare-bit vtable; w=1 uses 2^61-1).
        BigInt mods[2];
        mods[0] = randomOddModulus(rng, 64 * w);
        mods[1] = w == 1 ? (BigInt(u64{1}) << 61) - BigInt(u64{1})
                         : randomOddModulus(rng, 64 * w - 2);
        for (const BigInt &p : mods) {
            if (p <= BigInt(u64{2}))
                continue;
            MontCtx ctx(p);
            ASSERT_EQ(ctx.limbCount(), static_cast<size_t>(w));
            // Edge residues: 0, 1, p-1; then random pairs.
            const Residue zero{};
            const Residue one = rawResidue(ctx, BigInt(u64{1}));
            const Residue top = rawResidue(ctx, p - BigInt(u64{1}));
            checkOps(ctx, zero, top);
            checkOps(ctx, one, one);
            checkOps(ctx, top, top);
            for (int i = 0; i < 10; ++i) {
                const Residue a =
                    rawResidue(ctx, BigInt::randomBelow(rng, p));
                const Residue b =
                    rawResidue(ctx, BigInt::randomBelow(rng, p));
                checkOps(ctx, a, b);
            }
        }
    }
}

TEST(MontKernel, VTableSelection)
{
    // Same width, different top limb: spare-bit and general moduli must
    // pick different kernel tables, and both must exist for all widths.
    for (size_t w = 1; w <= kMaxLimbs; ++w) {
        const KernelVTable *general = kernelVTable(w, u64{1} << 63);
        const KernelVTable *spare = kernelVTable(w, kSpareBitTopLimbMax);
        ASSERT_NE(general, nullptr);
        ASSERT_NE(spare, nullptr);
        EXPECT_NE(general, spare) << "width " << w;
    }
    EXPECT_EQ(kernelVTable(0, 1), nullptr);
    EXPECT_EQ(kernelVTable(kMaxLimbs + 1, 1), nullptr);
}

TEST(MontKernel, SumOfProductsMatchesGeneric)
{
    Rng rng(103);
    for (int w : {2, 3, 4, 6, 8, 13, 16}) {
        for (int spareBits : {0, 2}) {
            const BigInt p = randomOddModulus(rng, 64 * w - spareBits);
            MontCtx ctx(p);
            for (int iter = 0; iter < 40; ++iter) {
                const size_t count = 1 + rng.below(8);
                Residue vals[8];
                MontOpTerm terms[8];
                for (size_t i = 0; i < count; ++i)
                    vals[i] = rawResidue(ctx, BigInt::randomBelow(rng, p));
                for (size_t i = 0; i < count; ++i) {
                    // Coefficients in [-5, 5]: |nu| = 5 type towers, and
                    // zero terms must be skipped identically. a == b
                    // sometimes, to hit the internal squaring path.
                    terms[i].a = &vals[i];
                    terms[i].b = rng.below(3) == 0
                                     ? &vals[i]
                                     : &vals[rng.below(count)];
                    terms[i].coeff = static_cast<i64>(rng.below(11)) - 5;
                }
                Residue lazy{}, eager{};
                ctx.sumOfProducts(lazy, terms, count);
                ctx.sumOfProductsGeneric(eager, terms, count);
                EXPECT_EQ(lazy, eager) << "width " << w << " iter " << iter;
            }
            // Worst-case accumulation: all terms (p-1)^2 with coeff -5
            // drives the montRedc correction loop through multiple
            // subtractions of p.
            Residue top = rawResidue(ctx, p - BigInt(u64{1}));
            MontOpTerm worst[8];
            for (auto &t : worst)
                t = {&top, &top, -5};
            Residue lazy{}, eager{};
            ctx.sumOfProducts(lazy, worst, 8);
            ctx.sumOfProductsGeneric(eager, worst, 8);
            EXPECT_EQ(lazy, eager) << "width " << w;
        }
    }
}

TEST(MontKernel, InvMatchesFermatAndBigInt)
{
    // Known primes spanning widths 2, 4, 6.
    const BigInt primes[] = {
        (BigInt(u64{1}) << 127) - BigInt(u64{1}), // Mersenne, 2 limbs
        BigInt::fromString("0x2523648240000001ba344d80000000086121000000"
                           "000013a700000000000013"), // BN254, 4 limbs
        BigInt::fromString(
            "0x1a0111ea397fe69a4b1ba7b6434bacd764774b84f38512bf6730d2a0"
            "f6b0f6241eabfffeb153ffffb9feffffffffaaab"), // BLS12-381, 6
    };
    Rng rng(107);
    for (const BigInt &p : primes) {
        MontCtx ctx(p);
        Residue r{};
        ctx.inv(r, Residue{});
        EXPECT_TRUE(ctx.isZero(r)) << "inv(0) must be 0";
        for (int i = 0; i < 25; ++i) {
            const BigInt a = BigInt::randomBelow(rng, p - 1) + 1;
            const Residue am = ctx.toMont(a);
            Residue fermat{};
            ctx.inv(r, am);
            ctx.invFermat(fermat, am);
            EXPECT_EQ(r, fermat);
            EXPECT_EQ(ctx.fromMont(r), a.invMod(p));
        }
    }
}

TEST(MontKernel, InvAllWidthsAgainstBigInt)
{
    // Odd (possibly composite) moduli cover every width cheaply: the
    // xgcd inverse only needs gcd(a, m) == 1, which we enforce.
    Rng rng(109);
    for (int w = 1; w <= static_cast<int>(kMaxLimbs); ++w) {
        const BigInt m = randomOddModulus(rng, 64 * w);
        MontCtx ctx(m);
        for (int i = 0; i < 8; ++i) {
            BigInt a = BigInt::randomBelow(rng, m - 1) + 1;
            while (BigInt::gcd(a, m) != BigInt(u64{1}))
                a = BigInt::randomBelow(rng, m - 1) + 1;
            Residue r{};
            ctx.inv(r, ctx.toMont(a));
            EXPECT_EQ(ctx.fromMont(r), a.invMod(m)) << "width " << w;
        }
    }
}

TEST(MontKernel, InvNonCoprimeYieldsZero)
{
    // m = p127 * 3: sharing the factor p127 means no inverse exists and
    // the documented degenerate result is zero.
    const BigInt p127 = (BigInt(u64{1}) << 127) - BigInt(u64{1});
    const BigInt m = p127 * BigInt(u64{3});
    MontCtx ctx(m);
    Residue r{};
    ctx.inv(r, ctx.toMont(p127));
    EXPECT_TRUE(ctx.isZero(r));
}

TEST(MontKernel, BatchInvMatchesScalarInv)
{
    // Montgomery's trick must be BIT-identical to per-element inv():
    // every intermediate is a fully-reduced residue and the reduced
    // inverse is unique. Covers zeros in the batch (stay zero without
    // poisoning the product chain), in-place aliasing, and the empty/
    // singleton edges, across widths 2/4/6.
    const BigInt primes[] = {
        (BigInt(u64{1}) << 127) - BigInt(u64{1}),
        BigInt::fromString("0x2523648240000001ba344d80000000086121000000"
                           "000013a700000000000013"),
        BigInt::fromString(
            "0x1a0111ea397fe69a4b1ba7b6434bacd764774b84f38512bf6730d2a0"
            "f6b0f6241eabfffeb153ffffb9feffffffffaaab"),
    };
    Rng rng(113);
    for (const BigInt &p : primes) {
        MontCtx ctx(p);
        for (const size_t n : {size_t{0}, size_t{1}, size_t{2},
                               size_t{17}}) {
            std::vector<Residue> a(n);
            for (size_t i = 0; i < n; ++i)
                a[i] = ctx.toMont(BigInt::randomBelow(rng, p));
            if (n >= 3) {
                a[0] = Residue{};
                a[n / 2] = Residue{};
            }
            std::vector<Residue> out(n);
            ctx.batchInv(out.data(), a.data(), n);
            for (size_t i = 0; i < n; ++i) {
                Residue ref{};
                ctx.inv(ref, a[i]);
                EXPECT_EQ(out[i], ref) << "index " << i;
            }
            std::vector<Residue> alias = a;
            ctx.batchInv(alias.data(), alias.data(), n);
            EXPECT_EQ(alias, out);
        }
        std::vector<Residue> zeros(5);
        std::vector<Residue> zout(5);
        ctx.batchInv(zout.data(), zeros.data(), zeros.size());
        for (const Residue &z : zout)
            EXPECT_TRUE(ctx.isZero(z));
    }
}

#if FINESSE_HAVE_X86_ADX
TEST(MontKernel, AdxKernelMatchesGeneric)
{
    if (!cpuHasAdx())
        GTEST_SKIP() << "CPU lacks BMI2/ADX";
    Rng rng(113);
    // Spare-top-bit 4-limb moduli, including one with the top limb right
    // at the spare-bit boundary.
    const BigInt mods[] = {
        BigInt::fromString("0x2523648240000001ba344d80000000086121000000"
                           "000013a700000000000013"),
        (BigInt::fromString("0x7ffffffffffffffe") << 192) +
            randomOddModulus(rng, 190),
    };
    for (const BigInt &p : mods) {
        MontCtx ctx(p);
        ASSERT_EQ(ctx.limbCount(), 4u);
        u64 pl[4], n0inv;
        p.toLimbs(pl, 4);
        {
            u64 inv = 1;
            for (int i = 0; i < 6; ++i)
                inv *= 2 - pl[0] * inv;
            n0inv = ~inv + 1;
        }
        for (int i = 0; i < 2000; ++i) {
            const Residue a = rawResidue(ctx, BigInt::randomBelow(rng, p));
            const Residue b = rawResidue(ctx, BigInt::randomBelow(rng, p));
            Residue asmR{}, g{};
            montMulAdx4(asmR.data(), a.data(), b.data(), pl, n0inv);
            ctx.mulGeneric(g, a, b);
            EXPECT_EQ(asmR, g);
        }
    }
}
#endif

} // namespace
} // namespace finesse
