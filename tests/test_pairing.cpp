/**
 * @file
 * Native pairing correctness: bilinearity, non-degeneracy, order-r
 * outputs, hard-part chain verification, and group-law sanity on G1/G2
 * for the catalog curves.
 */
#include <gtest/gtest.h>

#include "pairing/cache.h"

namespace finesse {
namespace {

template <typename TW>
void
checkPairingProperties(const CurveSystem<TW> &sys, int iters)
{
    using GtT = typename TW::GtT;
    Rng rng(2024);
    const BigInt &r = sys.info().r;

    for (int it = 0; it < iters; ++it) {
        const auto P = sys.randomG1(rng);
        const auto Q = sys.randomG2(rng);
        const GtT e = sys.pair(P, Q);
        const GtT one = GtT::one(sys.tower().gtCtx());

        // Non-degeneracy and order r.
        EXPECT_FALSE(e.equals(one));
        EXPECT_TRUE(powBig(e, r).equals(one));

        // Bilinearity with random scalars.
        const BigInt a = BigInt::randomBelow(rng, r - 1) + 1;
        const BigInt b = BigInt::randomBelow(rng, r - 1) + 1;
        const auto aP = scalarMul(sys.g1Curve(), P, a);
        const auto bQ = scalarMul(sys.twistCurve(), Q, b);
        const GtT lhs = sys.pair(aP, bQ);
        const GtT rhs = sys.gtPow(e, (a * b).mod(r));
        EXPECT_TRUE(lhs.equals(rhs));

        // Additivity in the first slot.
        const auto P2 = sys.randomG1(rng);
        const auto sum = affineAdd(sys.g1Curve(), P, P2);
        EXPECT_TRUE(
            sys.pair(sum, Q).equals(sys.pair(P, Q).mul(sys.pair(P2, Q))));
    }
}

TEST(PairingBN254N, Properties)
{
    const auto &sys = curveSystem12("BN254N");
    EXPECT_EQ(sys.plan().hard, HardPartKind::BNChain)
        << "BN chain failed setup verification";
    checkPairingProperties(sys, 2);
}

TEST(PairingBN254N, GroupSanity)
{
    const auto &sys = curveSystem12("BN254N");
    // BN: G1 cofactor is 1.
    EXPECT_EQ(sys.g1Cofactor(), BigInt(u64{1}));
    EXPECT_TRUE(isOnCurve(sys.g1Curve(), sys.g1Gen()));
    EXPECT_TRUE(isOnCurve(sys.twistCurve(), sys.g2Gen()));
    EXPECT_TRUE(scalarMul(sys.g1Curve(), sys.g1Gen(), sys.info().r).infinity);
    EXPECT_TRUE(
        scalarMul(sys.twistCurve(), sys.g2Gen(), sys.info().r).infinity);
}

TEST(PairingBN254N, DigitsFallbackAgrees)
{
    // The generic base-p digit hard part must also be a valid pairing
    // (a fixed power of the chain pairing).
    const auto &sys = curveSystem12("BN254N");
    Rng rng(7);
    const auto P = sys.randomG1(rng);
    const auto Q = sys.randomG2(rng);

    PairingPlan alt = sys.plan();
    alt.hard = HardPartKind::Digits;
    PairingEngine<NativeTower12> eng(sys.tower(), alt);
    const auto e = eng.pair(P.x, P.y, Q.x, Q.y);
    EXPECT_FALSE(e.equals(Fp12::one(sys.tower().gtCtx())));
    EXPECT_TRUE(powBig(e, sys.info().r)
                    .equals(Fp12::one(sys.tower().gtCtx())));
    // Bilinearity of the digits variant.
    const BigInt a(u64{12345});
    const auto aP = scalarMul(sys.g1Curve(), P, a);
    EXPECT_TRUE(eng.pair(aP.x, aP.y, Q.x, Q.y).equals(powBig(e, a)));
}

TEST(PairingBLS12_381, Properties)
{
    const auto &sys = curveSystem12("BLS12-381");
    EXPECT_EQ(sys.plan().hard, HardPartKind::BLSChain)
        << "BLS12 chain failed setup verification";
    checkPairingProperties(sys, 2);
}

TEST(PairingBLS12_381, KnownShape)
{
    const auto &sys = curveSystem12("BLS12-381");
    // BLS12-381 is the M-type twist curve y^2 = x^3 + 4 over Fp.
    EXPECT_EQ(sys.b(), 4);
    EXPECT_EQ(sys.twistType(), TwistType::M);
    EXPECT_EQ(sys.info().logP(), 381);
    EXPECT_EQ(sys.info().logR(), 255);
}

TEST(PairingBLS24_509, Properties)
{
    const auto &sys = curveSystem24("BLS24-509");
    EXPECT_EQ(sys.plan().hard, HardPartKind::BLSChain)
        << "BLS24 chain failed setup verification";
    checkPairingProperties(sys, 1);
}

TEST(PairingAllCurves, BilinearitySmoke)
{
    Rng rng(99);
    for (const auto &def : curveCatalog()) {
        SCOPED_TRACE(def.name);
        if (def.family == CurveFamily::BLS24) {
            checkPairingProperties(curveSystem24(def.name), 1);
        } else {
            checkPairingProperties(curveSystem12(def.name), 1);
        }
    }
}

TEST(PairingPlanChecks, ChainVerificationCatchesBadChains)
{
    // A deliberately wrong "chain" must fail exponent verification.
    const auto &sys = curveSystem12("BN254N");
    const bool ok = verifyHardChain(
        [](const ExpoSim &f, const BigInt &) { return f.sqr(); },
        sys.info().p, sys.info().r, sys.info().def.x, 12);
    EXPECT_FALSE(ok);
    // And the real chains pass.
    EXPECT_TRUE(verifyHardChain(
        [](const ExpoSim &f, const BigInt &x) { return hardChainBN(f, x); },
        sys.info().p, sys.info().r, sys.info().def.x, 12));
}

TEST(CurveCatalog, Table2BitLengths)
{
    // Reproduces Table 2 of the paper.
    struct Expect
    {
        const char *name;
        int logT, logP, logR, k;
    };
    const Expect expected[] = {
        {"BN254N", 62, 254, 254, 12},   {"BN462", 114, 462, 462, 12},
        {"BN638", 158, 638, 638, 12},   {"BLS12-381", 64, 381, 255, 12},
        {"BLS12-446", 75, 446, 299, 12}, {"BLS12-638", 109, 638, 427, 12},
        {"BLS24-509", 51, 509, 408, 24},
    };
    for (const auto &e : expected) {
        SCOPED_TRACE(e.name);
        const CurveInfo info = deriveCurveInfo(findCurve(e.name));
        EXPECT_EQ(info.logP(), e.logP);
        EXPECT_EQ(info.logR(), e.logR);
        EXPECT_EQ(info.k, e.k);
        // log|t| within 1 bit of the table (t vs 6x^2+1 conventions).
        EXPECT_NEAR(info.def.x.abs().bitLength(), e.logT, 3);
    }
}

TEST(TwistOrder, MatchesPointCounts)
{
    const auto &sys = curveSystem12("BN254N");
    // For BN: #E'(Fp2) = p(p-1) + t^2 - t + 1? Use the classical
    // identity #E'(Fp2) = (p + 1 - t)(p - 1 + t) + t^2 ... instead of a
    // closed form, just verify the computed order annihilates G2 points.
    Rng rng(5);
    const auto Q = sys.randomG2(rng);
    const BigInt n = sys.g2Cofactor() * sys.info().r;
    EXPECT_TRUE(scalarMul(sys.twistCurve(), Q, n).infinity);
}

} // namespace
} // namespace finesse
