/**
 * @file
 * Persistent artifact cache (support/diskcache.h + the framework's
 * trace-artifact integration): round trips, atomic publication under
 * concurrent multi-process writers, loud self-healing rejection of
 * truncated / bit-flipped / key-mismatched entries, fingerprint
 * invalidation of the trace-artifact key schema, and the env-unset
 * contract (disabled cache == bit-identical in-memory behavior, all
 * disk counters zero).
 */
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/artifacts.h"
#include "core/framework.h"
#include "curve/catalog.h"
#include "support/diskcache.h"

using namespace finesse;

namespace {

/** Fresh per-test cache directory under the build tree. */
std::string
freshDir(const std::string &name)
{
    const std::string dir = "diskcache_test_" + name;
    std::string cmd = "rm -rf " + dir;
    EXPECT_EQ(std::system(cmd.c_str()), 0);
    return dir;
}

std::vector<u8>
payloadOf(const std::string &s)
{
    return std::vector<u8>(s.begin(), s.end());
}

size_t
fileSize(const std::string &path)
{
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0 ? static_cast<size_t>(st.st_size)
                                          : 0;
}

/** RAII: force the process-wide cache off (and restore nothing). */
struct CacheOff
{
    CacheOff()
    {
        unsetenv(kArtifactCacheEnv);
        configureArtifactCache("");
    }
    ~CacheOff() { configureArtifactCache(""); }
};

} // namespace

TEST(DiskCache, RoundTripAndStats)
{
    DiskCache dc(freshDir("roundtrip"));
    std::vector<u8> out;
    EXPECT_FALSE(dc.get("some/key", out));
    EXPECT_TRUE(dc.put("some/key", payloadOf("hello artifacts")));
    ASSERT_TRUE(dc.get("some/key", out));
    EXPECT_EQ(out, payloadOf("hello artifacts"));

    // Overwrite: last put wins, still valid.
    EXPECT_TRUE(dc.put("some/key", payloadOf("v2")));
    ASSERT_TRUE(dc.get("some/key", out));
    EXPECT_EQ(out, payloadOf("v2"));

    // Empty payloads are legal entries, distinct from misses.
    EXPECT_TRUE(dc.put("empty", {}));
    ASSERT_TRUE(dc.get("empty", out));
    EXPECT_TRUE(out.empty());

    const DiskCacheStats st = dc.stats();
    EXPECT_EQ(st.hits, 3u);
    EXPECT_EQ(st.misses, 1u);
    EXPECT_EQ(st.puts, 3u);
    EXPECT_EQ(st.rejects, 0u);

    dc.remove("some/key");
    EXPECT_FALSE(dc.get("some/key", out));
}

TEST(DiskCache, NestedDirectoryCreation)
{
    const std::string dir = freshDir("nested") + "/a/b/c";
    DiskCache dc(dir);
    EXPECT_TRUE(dc.put("k", payloadOf("deep")));
    std::vector<u8> out;
    DiskCache reopened(dir);
    ASSERT_TRUE(reopened.get("k", out));
    EXPECT_EQ(out, payloadOf("deep"));
}

TEST(DiskCache, TruncatedEntryRejectedAndHealed)
{
    DiskCache dc(freshDir("truncated"));
    ASSERT_TRUE(dc.put("key", payloadOf("a perfectly valid payload")));
    const std::string path = dc.pathFor("key");
    const size_t full = fileSize(path);
    ASSERT_GT(full, 0u);
    ASSERT_EQ(::truncate(path.c_str(), static_cast<off_t>(full - 7)), 0);

    std::vector<u8> out;
    EXPECT_FALSE(dc.get("key", out));
    EXPECT_EQ(dc.stats().rejects, 1u);
    // Healed: the corrupt file is gone, the next lookup is a clean
    // miss (not another reject) and the key is writable again.
    EXPECT_EQ(fileSize(path), 0u);
    EXPECT_FALSE(dc.get("key", out));
    EXPECT_EQ(dc.stats().rejects, 1u);
    EXPECT_TRUE(dc.put("key", payloadOf("fresh")));
    EXPECT_TRUE(dc.get("key", out));
}

TEST(DiskCache, BitFlippedPayloadRejected)
{
    DiskCache dc(freshDir("bitflip"));
    ASSERT_TRUE(dc.put("key", payloadOf("checksummed payload bytes")));
    const std::string path = dc.pathFor("key");
    const size_t full = fileSize(path);
    ASSERT_GT(full, 0u);
    // Flip one bit in the last payload byte (headers intact).
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(static_cast<std::streamoff>(full - 1));
    char c = 0;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x40);
    f.seekp(static_cast<std::streamoff>(full - 1));
    f.write(&c, 1);
    f.close();

    std::vector<u8> out;
    EXPECT_FALSE(dc.get("key", out));
    EXPECT_EQ(dc.stats().rejects, 1u);
    EXPECT_EQ(fileSize(path), 0u); // unlinked
}

TEST(DiskCache, KeyMismatchRejected)
{
    // An entry copied (or hash-colliding) into another key's slot must
    // not alias that key: the embedded full-key check rejects it.
    DiskCache dc(freshDir("keymismatch"));
    ASSERT_TRUE(dc.put("key-a", payloadOf("payload of a")));
    const std::string cmd =
        "cp " + dc.pathFor("key-a") + " " + dc.pathFor("key-b");
    ASSERT_EQ(std::system(cmd.c_str()), 0);

    std::vector<u8> out;
    EXPECT_FALSE(dc.get("key-b", out));
    EXPECT_EQ(dc.stats().rejects, 1u);
    // key-a is untouched.
    EXPECT_TRUE(dc.get("key-a", out));
    EXPECT_EQ(out, payloadOf("payload of a"));
}

TEST(DiskCache, ConcurrentWritersSameKey)
{
    // Two writer processes hammer the same key with differently-sized
    // valid payloads while the parent reads: every successful get must
    // return one of the two valid payloads, never a torn mix. This is
    // the atomic tmp+rename publication contract.
    const std::string dir = freshDir("concurrent");
    DiskCache dc(dir);
    const std::vector<u8> small = payloadOf(std::string(64, 'x'));
    const std::vector<u8> large = payloadOf(std::string(64 * 1024, 'y'));

    std::vector<pid_t> kids;
    for (int w = 0; w < 2; ++w) {
        const pid_t pid = fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            DiskCache writer(dir);
            const std::vector<u8> &mine = w == 0 ? small : large;
            for (int i = 0; i < 200; ++i)
                writer.put("contested", mine);
            _exit(0);
        }
        kids.push_back(pid);
    }

    // Read continuously until both writers exit, then once more: the
    // final entry is guaranteed present and every observed read must
    // be one complete payload.
    size_t reads = 0;
    std::vector<bool> done(kids.size(), false);
    size_t doneCount = 0;
    while (doneCount < kids.size()) {
        for (size_t k = 0; k < kids.size(); ++k) {
            if (done[k])
                continue;
            int status = 0;
            if (waitpid(kids[k], &status, WNOHANG) == kids[k]) {
                EXPECT_TRUE(WIFEXITED(status) &&
                            WEXITSTATUS(status) == 0);
                done[k] = true;
                ++doneCount;
            }
        }
        std::vector<u8> mid;
        if (dc.get("contested", mid)) {
            ++reads;
            ASSERT_TRUE(mid == small || mid == large)
                << "torn read: " << mid.size() << " bytes";
        }
    }
    std::vector<u8> out;
    ASSERT_TRUE(dc.get("contested", out));
    EXPECT_TRUE(out == small || out == large);
    EXPECT_GT(reads, 0u);
    EXPECT_EQ(dc.stats().rejects, 0u);
}

TEST(Artifacts, TraceKeySchemaFoldsFingerprint)
{
    // The trace-artifact key embeds the build/catalog fingerprint: a
    // catalog or codec change produces disjoint keys, which is how
    // stale artifacts are invalidated (they are simply never looked
    // up, and an aliased slot is caught by the embedded-key check).
    const std::string key = traceArtifactKey("BN254N|full|gvn|k");
    EXPECT_NE(key.find("trace|"), std::string::npos);
    EXPECT_NE(key.find("BN254N|full|gvn|k"), std::string::npos);
    char fp[17];
    std::snprintf(fp, sizeof fp, "%016llx",
                  static_cast<unsigned long long>(artifactFingerprint()));
    EXPECT_NE(key.find(fp), std::string::npos)
        << "key must embed the artifact fingerprint";

    // Same trace key, different fingerprint epoch => different slot.
    DiskCache dc(freshDir("fingerprint"));
    EXPECT_NE(dc.pathFor(std::string("trace|deadbeefdeadbeef|k")),
              dc.pathFor(std::string("trace|") + fp + "|k"));
}

TEST(Artifacts, TraceModuleRoundTripAndCorruptionRejected)
{
    CacheOff off;
    Framework fw("BN254N");
    CompileOptions opt;
    opt.part = TracePart::MillerOnly;
    OptStats stats;
    const std::shared_ptr<const Module> m = fw.traceShared(opt, stats);

    const std::vector<u8> bytes = encodeTraceArtifact(*m, stats);
    Module decoded;
    OptStats decodedStats;
    ASSERT_TRUE(decodeTraceArtifact(bytes, decoded, decodedStats));
    EXPECT_TRUE(decoded == *m);
    EXPECT_EQ(decodedStats.instrsBefore, stats.instrsBefore);
    EXPECT_EQ(decodedStats.instrsAfter, stats.instrsAfter);
    EXPECT_EQ(decodedStats.passes.size(), stats.passes.size());

    // A truncated payload decodes to false, loudly, not to UB.
    std::vector<u8> cut(bytes.begin(), bytes.end() - 9);
    EXPECT_FALSE(decodeTraceArtifact(cut, decoded, decodedStats));
}

TEST(FrameworkDiskCache, WarmTraceSkipsFrontend)
{
    const std::string dir = freshDir("framework");
    unsetenv(kArtifactCacheEnv);
    configureArtifactCache(dir);
    Framework fw("BN254N");
    CompileOptions opt;
    opt.part = TracePart::MillerOnly;

    clearTraceCache();
    OptStats s1;
    const std::shared_ptr<const Module> m1 = fw.traceShared(opt, s1);
    TraceCacheStats tc = traceCacheStats();
    EXPECT_EQ(tc.diskHits, 0u);
    EXPECT_EQ(tc.diskPuts, 1u);
    EXPECT_EQ(tc.tracesPerformed(), 1u);

    // New process simulated by clearing the in-memory cache: the
    // trace now comes from disk, bit-identical, no front end run.
    clearTraceCache();
    OptStats s2;
    const std::shared_ptr<const Module> m2 = fw.traceShared(opt, s2);
    tc = traceCacheStats();
    EXPECT_EQ(tc.diskHits, 1u);
    EXPECT_EQ(tc.tracesPerformed(), 0u);
    EXPECT_TRUE(*m1 == *m2);
    EXPECT_EQ(s1.instrsAfter, s2.instrsAfter);

    // Corrupt the artifact: overwrite it with a checksum-valid entry
    // whose payload is not a trace encoding. It survives the
    // DiskCache integrity check (a truncated FILE would already be
    // rejected there -- see DiskCache.TruncatedEntryRejectedAndHealed)
    // and dies in decode: the framework rejects loudly, falls back to
    // a fresh front-end trace, and re-publishes.
    DiskCache *dc = artifactCache();
    ASSERT_NE(dc, nullptr);
    const std::string diskKey = traceArtifactKey(fw.traceKey(opt));
    ASSERT_GT(fileSize(dc->pathFor(diskKey)), 0u);
    ASSERT_TRUE(dc->put(diskKey, std::vector<u8>{0xde, 0xad, 0xbe, 0xef}));
    clearTraceCache();
    OptStats s3;
    const std::shared_ptr<const Module> m3 = fw.traceShared(opt, s3);
    tc = traceCacheStats();
    EXPECT_EQ(tc.diskHits, 0u);
    EXPECT_EQ(tc.diskRejects, 1u);
    EXPECT_EQ(tc.tracesPerformed(), 1u);
    EXPECT_EQ(tc.diskPuts, 1u); // re-published
    EXPECT_TRUE(*m1 == *m3);

    configureArtifactCache("");
    clearTraceCache();
}

TEST(FrameworkDiskCache, EnvUnsetMeansPureInMemory)
{
    CacheOff off;
    Framework fw("BN254N");
    CompileOptions opt;
    opt.part = TracePart::MillerOnly;

    clearTraceCache();
    OptStats s1;
    (void)fw.traceShared(opt, s1);
    OptStats s2;
    (void)fw.traceShared(opt, s2); // in-memory hit
    const TraceCacheStats tc = traceCacheStats();
    EXPECT_EQ(tc.misses, 1u);
    EXPECT_EQ(tc.hits, 1u);
    EXPECT_EQ(tc.diskHits, 0u);
    EXPECT_EQ(tc.diskMisses, 0u);
    EXPECT_EQ(tc.diskPuts, 0u);
    EXPECT_EQ(tc.diskRejects, 0u);
    EXPECT_EQ(tc.tracesPerformed(), 1u);
    EXPECT_EQ(artifactCache(), nullptr);
    clearTraceCache();
}
