/**
 * @file
 * TCP-layer tests: host:port parsing, ephemeral binds, connect
 * deadlines, refused connections, half-close semantics and the
 * TcpConnection lifecycle (including a listen worker's re-listen
 * after its master disconnects). All binds use port 0 so the suite
 * never collides with another process or a parallel ctest shard.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

#include "dse/distributor.h"
#include "support/connection.h"
#include "support/socket.h"
#include "support/subprocess.h"

namespace finesse {
namespace {

using Clock = std::chrono::steady_clock;

HostPort
loopback(int port)
{
    HostPort hp;
    hp.host = "127.0.0.1";
    hp.port = port;
    return hp;
}

/** Bind an ephemeral listener; returns the fd and fills @p port. */
int
listenEphemeral(int *port)
{
    std::string err;
    const int fd = tcpListen(loopback(0), 4, &err, port);
    EXPECT_GE(fd, 0) << err;
    EXPECT_GT(*port, 0);
    return fd;
}

// ------------------------------------------------------- parseHostPort

TEST(Socket, ParseHostPortAcceptsPlainAndBracketedForms)
{
    const HostPort plain = parseHostPort("worker7:9000");
    EXPECT_EQ(plain.host, "worker7");
    EXPECT_EQ(plain.port, 9000);
    EXPECT_EQ(plain.describe(), "worker7:9000");

    const HostPort v6 = parseHostPort("[::1]:80");
    EXPECT_EQ(v6.host, "::1");
    EXPECT_EQ(v6.port, 80);
    EXPECT_EQ(v6.describe(), "[::1]:80");

    const HostPort ephemeral = parseHostPort("0.0.0.0:0");
    EXPECT_EQ(ephemeral.port, 0);
}

TEST(Socket, ParseHostPortRejectsJunkLoudly)
{
    // A typo'd host list must fail the sweep, not silently shrink the
    // pool -- same loud-failure contract as the fault-plan grammar.
    EXPECT_THROW(parseHostPort(""), FatalError);
    EXPECT_THROW(parseHostPort("hostonly"), FatalError);
    EXPECT_THROW(parseHostPort("host:"), FatalError);
    EXPECT_THROW(parseHostPort(":123"), FatalError);
    EXPECT_THROW(parseHostPort("host:12x"), FatalError);
    EXPECT_THROW(parseHostPort("host:-1"), FatalError);
    EXPECT_THROW(parseHostPort("host:65536"), FatalError);
    EXPECT_THROW(parseHostPort("[::1]"), FatalError);
    EXPECT_THROW(parseHostPort("[::1:80"), FatalError);
}

// ----------------------------------------------------- listen/connect

TEST(Socket, EphemeralListenReportsItsPortAndAcceptsAConnect)
{
    int port = 0;
    const int listenFd = listenEphemeral(&port);

    std::string err;
    const int client = tcpConnect(loopback(port), 2000, &err);
    ASSERT_GE(client, 0) << err;
    const int server = tcpAccept(listenFd, 2000, &err);
    ASSERT_GE(server, 0) << err;

    // Bytes flow both ways through the accepted pair.
    ASSERT_TRUE(writeAllFd(client, "ping", 4));
    char buf[8] = {};
    ASSERT_EQ(readSomeFd(server, buf, sizeof buf), 4);
    EXPECT_EQ(std::string(buf, 4), "ping");
    ASSERT_TRUE(writeAllFd(server, "pong", 4));
    ASSERT_EQ(readSomeFd(client, buf, sizeof buf), 4);
    EXPECT_EQ(std::string(buf, 4), "pong");

    ::close(client);
    ::close(server);
    ::close(listenFd);
}

TEST(Socket, AcceptTimesOutWithEmptyError)
{
    // Timeout is the one non-error failure of tcpAccept: err stays
    // empty so callers can tell "nobody came" from "listener broke".
    int port = 0;
    const int listenFd = listenEphemeral(&port);
    std::string err = "sentinel";
    const auto t0 = Clock::now();
    EXPECT_EQ(tcpAccept(listenFd, 50, &err), -1);
    const auto elapsed = std::chrono::duration_cast<
        std::chrono::milliseconds>(Clock::now() - t0);
    EXPECT_TRUE(err.empty());
    EXPECT_GE(elapsed.count(), 45);
    ::close(listenFd);
}

TEST(Socket, ConnectToRefusedPortFailsFast)
{
    // Bind-then-close guarantees the port is unused; loopback RST
    // makes the failure immediate, well inside the deadline.
    int port = 0;
    ::close(listenEphemeral(&port));

    std::string err;
    const auto t0 = Clock::now();
    EXPECT_EQ(tcpConnect(loopback(port), 2000, &err), -1);
    const auto elapsed = std::chrono::duration_cast<
        std::chrono::milliseconds>(Clock::now() - t0);
    EXPECT_FALSE(err.empty());
    EXPECT_LT(elapsed.count(), 1500);
}

TEST(Socket, ConnectDeadlineIsHonored)
{
    // A listener whose backlog is already saturated by unaccepted
    // connects makes further SYNs hang (loopback queues them), so the
    // nonblocking-connect deadline is what returns control. Some
    // kernels grow the queue enough to admit the probe anyway --
    // success and fast failure are both fine; what is being tested is
    // the upper bound on the wait.
    int port = 0;
    std::string err;
    const int listenFd = tcpListen(loopback(0), 1, &err, &port);
    ASSERT_GE(listenFd, 0) << err;
    std::vector<int> cloggers;
    for (int i = 0; i < 16; ++i) {
        const int fd = tcpConnect(loopback(port), 100, &err);
        if (fd < 0)
            break; // backlog finally full
        cloggers.push_back(fd);
    }

    const auto t0 = Clock::now();
    const int probe = tcpConnect(loopback(port), 250, &err);
    const auto elapsed = std::chrono::duration_cast<
        std::chrono::milliseconds>(Clock::now() - t0);
    EXPECT_LT(elapsed.count(), 2000);
    if (probe >= 0)
        ::close(probe);
    for (int fd : cloggers)
        ::close(fd);
    ::close(listenFd);
}

// ------------------------------------------------- Connection objects

TEST(Socket, TcpConnectionHalfCloseDeliversEofThenDrains)
{
    int port = 0;
    const int listenFd = listenEphemeral(&port);
    std::string err;
    std::unique_ptr<Connection> conn =
        connectTcpWorker(loopback(port), 2000, &err);
    ASSERT_TRUE(conn) << err;
    EXPECT_NE(conn->describe().find("tcp worker"), std::string::npos);
    const int server = tcpAccept(listenFd, 2000, &err);
    ASSERT_GE(server, 0) << err;
    ::close(listenFd);

    // Half-close the master->worker direction: the server sees EOF
    // but its own writes still arrive -- the shutdown contract the
    // graceful finish() path depends on.
    ASSERT_TRUE(conn->writeAll("last", 4));
    conn->closeWrite();
    char buf[8] = {};
    ASSERT_EQ(readSomeFd(server, buf, sizeof buf), 4);
    EXPECT_EQ(readSomeFd(server, buf, sizeof buf), 0); // EOF
    ASSERT_TRUE(writeAllFd(server, "bye", 3));
    ::close(server);

    long r;
    std::string got;
    while ((r = conn->readSome(buf, sizeof buf)) > 0)
        got.append(buf, static_cast<size_t>(r));
    EXPECT_EQ(r, 0); // EOF after the peer's final bytes
    EXPECT_EQ(got, "bye");
    // terminate() on a remote has no pid to signal: never "signaled".
    EXPECT_FALSE(conn->terminate());
}

TEST(Socket, ListenWorkerServesTwoMastersInTurn)
{
    // The re-listen contract: one `dse-worker --listen` process
    // outlives its master. Master 1 connects, handshakes and
    // disconnects; master 2 then connects to the SAME worker and gets
    // a fresh Hello. --max-accepts=2 bounds the server for a clean
    // exit. (This is the unit-level version; the end-to-end identity
    // run lives in test_distributed_dse.cpp.)
    Subprocess worker;
    worker.spawn({selfExePath(), "dse-worker", "--listen=127.0.0.1:0",
                  "--max-accepts=2"},
                 {});

    // Port discovery: parse the stdout banner.
    std::string banner;
    char c;
    while (banner.find('\n') == std::string::npos &&
           worker.readSome(&c, 1) == 1)
        banner.push_back(c);
    const std::string prefix = "dse-worker listening on ";
    ASSERT_EQ(banner.rfind(prefix, 0), 0u) << banner;
    const HostPort at = parseHostPort(
        banner.substr(prefix.size(),
                      banner.size() - prefix.size() - 1));
    ASSERT_GT(at.port, 0);

    for (int master = 0; master < 2; ++master) {
        std::string err;
        std::unique_ptr<Connection> conn =
            connectTcpWorker(at, 5000, &err);
        ASSERT_TRUE(conn) << "master " << master << ": " << err;
        // The worker speaks first: a Hello frame (magic 'FDSE' in the
        // leading bytes) proves a fresh worker loop per session.
        u8 head[4] = {};
        size_t have = 0;
        while (have < sizeof head) {
            const long r =
                conn->readSome(head + have, sizeof head - have);
            if (r == kReadAgainFd)
                continue;
            ASSERT_GT(r, 0);
            have += static_cast<size_t>(r);
        }
        EXPECT_EQ(std::string(reinterpret_cast<char *>(head), 4),
                  "FDSE");
        conn->finish(); // half-close -> worker session ends cleanly
    }
    EXPECT_EQ(worker.wait(), 0); // max-accepts reached: clean exit
}

TEST(Socket, LoopbackSpawnDetectsAChildThatNeverConnects)
{
    // `/bin/true` exits without dialing back: the accept deadline
    // must fire, reap the child and surface an error -- not hang or
    // leak a zombie.
    std::string err;
    const auto t0 = Clock::now();
    std::unique_ptr<Connection> conn =
        spawnLoopbackTcpConnection({"/bin/true"}, {}, 200, &err);
    const auto elapsed = std::chrono::duration_cast<
        std::chrono::milliseconds>(Clock::now() - t0);
    EXPECT_EQ(conn, nullptr);
    EXPECT_FALSE(err.empty());
    EXPECT_LT(elapsed.count(), 5000);
}

} // namespace
} // namespace finesse

int
main(int argc, char **argv)
{
    // The listen-worker test re-execs this binary as its worker.
    if (const std::optional<int> rc =
            finesse::maybeRunDseWorkerMain(argc, argv))
        return *rc;
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
