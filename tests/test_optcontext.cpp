/**
 * @file
 * OptContext worklist-engine tests.
 *
 *  - Byte-identity: the single-build worklist engine must produce
 *    modules identical to the legacy sweep engine (same insts, inputs,
 *    outputs, constants) and matching per-pass stats, for the default
 *    pipeline across the full curve catalog and for many `--passes`
 *    subsets (ablation semantics are part of the contract).
 *  - Oracle: optimized modules are functionally equivalent to the
 *    unoptimized trace (and to the native pairing library) on random
 *    inputs, for the full catalog and several pipeline subsets.
 *  - Attribution: per-pass instruction deltas sum to the aggregate
 *    reduction, every pass is invoked once per round, and the
 *    pipeline is idempotent (a second run changes nothing).
 */
#include <gtest/gtest.h>

#include "core/framework.h"
#include "curve/catalog.h"
#include "sim/functional.h"

namespace finesse {
namespace {

Module
rawTrace(const std::string &curve)
{
    return curveHandle(curve).trace(VariantConfig{}, TracePart::Full,
                                    false, nullptr);
}

/** Subsets exercising every pass alone and several mixed orders. */
std::vector<std::vector<std::string>>
ablationSubsets()
{
    std::vector<std::vector<std::string>> subsets;
    for (const std::string &n : frontendPassNames())
        subsets.push_back({n});
    subsets.push_back({"gvn", "dce"});
    subsets.push_back({"dce", "gvn"}); // dce first: non-canonical order
    subsets.push_back({"zerooneprop", "strengthreduce", "dce"});
    subsets.push_back({"constfold", "zerooneprop", "gvn"});
    subsets.push_back(frontendPassNames());
    return subsets;
}

void
expectStatsMatch(const OptStats &sweep, const OptStats &worklist)
{
    EXPECT_EQ(sweep.instrsBefore, worklist.instrsBefore);
    EXPECT_EQ(sweep.instrsAfter, worklist.instrsAfter);
    EXPECT_EQ(sweep.iterations, worklist.iterations);
    ASSERT_EQ(sweep.passes.size(), worklist.passes.size());
    for (size_t i = 0; i < sweep.passes.size(); ++i) {
        const PassStats &a = sweep.passes[i];
        const PassStats &b = worklist.passes[i];
        EXPECT_EQ(a.name, b.name);
        EXPECT_EQ(a.frontend, b.frontend);
        EXPECT_EQ(a.invocations, b.invocations) << a.name;
        EXPECT_EQ(a.instrsRemoved, b.instrsRemoved) << a.name;
    }
}

void
expectEnginesAgree(const Module &raw,
                   const std::vector<std::string> &passes)
{
    Module viaSweep = raw;
    Module viaWorklist = raw;
    const OptStats sweep = runFrontendPipelineSweep(viaSweep, passes);
    const OptStats worklist =
        runFrontendPipeline(viaWorklist, passes);
    EXPECT_TRUE(viaSweep == viaWorklist)
        << "modules diverge for pipeline of " << passes.size()
        << " passes";
    expectStatsMatch(sweep, worklist);
}

// ------------------------------------------------- small-module engine

/**
 * Exercises every engine mechanism on a hand-built module: constant
 * folding + interning, identity elision, op rewriting, value
 * numbering across elided operands, dead code and dead constants.
 */
Module
engineModule()
{
    Module m;
    m.p = BigInt::fromString("1000003");
    auto id = [&] { return m.numValues++; };
    const i32 c0 = id(), c2 = id(), c9 = id();
    m.constants = {{c0, BigInt()}, {c2, BigInt(u64{2})},
                   {c9, BigInt(u64{9})}}; // c9 never used: dce food
    const i32 aRaw = id(), bRaw = id();
    m.inputs = {aRaw, bRaw};
    const i32 a = id();
    m.body.push_back({Op::Icv, a, aRaw, -1});
    const i32 b = id();
    m.body.push_back({Op::Icv, b, bRaw, -1});
    const i32 fold = id(); // 2+2: folds, interns 4
    m.body.push_back({Op::Add, fold, c2, c2});
    const i32 addz = id(); // a+0 -> a
    m.body.push_back({Op::Add, addz, a, c0});
    const i32 mul1 = id(); // b * (a+0) -> b * a
    m.body.push_back({Op::Mul, mul1, b, addz});
    const i32 mul2 = id(); // a * b: gvn-dup of mul1 after elision
    m.body.push_back({Op::Mul, mul2, a, b});
    const i32 dbl = id(); // mul1 * 2 -> dbl (strength reduction)
    m.body.push_back({Op::Mul, dbl, mul1, c2});
    const i32 dead = id(); // never used
    m.body.push_back({Op::Sub, dead, mul2, fold});
    const i32 sum = id();
    m.body.push_back({Op::Add, sum, dbl, mul2});
    const i32 out = id();
    m.body.push_back({Op::Cvt, out, sum, -1});
    m.outputs = {out};
    m.verify();
    return m;
}

TEST(OptContext, SmallModuleEnginesAgreeOnEverySubset)
{
    const Module raw = engineModule();
    for (const auto &subset : ablationSubsets())
        expectEnginesAgree(raw, subset);
}

TEST(OptContext, SmallModuleOptimizesAsExpected)
{
    Module m = engineModule();
    const auto want =
        runModule(m, FpCtx(m.p), {BigInt(u64{5}), BigInt(u64{7})});
    const OptStats stats =
        runFrontendPipeline(m, frontendPassNames());
    // 2 Icv + Mul(a,b) + Dbl + Add + Cvt survive.
    EXPECT_EQ(m.size(), 6u);
    EXPECT_EQ(m.countOp(Op::Mul), 1u); // gvn merged the commuted pair
    EXPECT_EQ(m.countOp(Op::Dbl), 1u); // strength-reduced mul-by-2
    // Folded 4, unused 9, zero and two all end up unreferenced.
    EXPECT_EQ(m.constants.size(), 0u);
    EXPECT_EQ(stats.totalRemoved(),
              static_cast<i64>(stats.instrsBefore) -
                  static_cast<i64>(stats.instrsAfter));
    const auto got =
        runModule(m, FpCtx(m.p), {BigInt(u64{5}), BigInt(u64{7})});
    EXPECT_EQ(got, want);
}

// --------------------------------------------- catalog-wide identity

TEST(OptContext, DefaultPipelineIdenticalAcrossCatalog)
{
    for (const CurveDef &def : curveCatalog()) {
        SCOPED_TRACE(def.name);
        expectEnginesAgree(rawTrace(def.name), frontendPassNames());
    }
}

TEST(OptContext, AblationSubsetsIdenticalOnRepresentativeCurves)
{
    for (const char *curve : {"BN254N", "BLS12-381", "BLS24-509"}) {
        SCOPED_TRACE(curve);
        const Module raw = rawTrace(curve);
        for (const auto &subset : ablationSubsets())
            expectEnginesAgree(raw, subset);
    }
}

// ----------------------------------------------------- oracle (sim)

TEST(OptContext, OptimizedModulesMatchUnoptimizedAcrossCatalog)
{
    const std::vector<std::vector<std::string>> subsets = {
        frontendPassNames(),
        {"dce"},
        {"gvn", "dce"},
        {"zerooneprop"},
    };
    for (const CurveDef &def : curveCatalog()) {
        SCOPED_TRACE(def.name);
        const Module raw = rawTrace(def.name);
        const FpCtx fp(raw.p);
        Rng rng(7);
        const auto inputs =
            curveHandle(def.name).sampleInputs(rng, TracePart::Full);
        const auto want = runModule(raw, fp, inputs);
        for (const auto &subset : subsets) {
            Module opt = raw;
            runFrontendPipeline(opt, subset);
            EXPECT_EQ(runModule(opt, fp, inputs), want)
                << "subset size " << subset.size();
        }
    }
}

TEST(OptContext, OptimizedModuleMatchesNativeReference)
{
    for (const char *curve : {"BN254N", "BLS12-381"}) {
        SCOPED_TRACE(curve);
        Framework fw(curve);
        Module m = rawTrace(curve);
        runFrontendPipeline(m, frontendPassNames());
        EXPECT_EQ(fw.validateModule(m, 2), 2);
    }
}

// ------------------------------------------------------- attribution

TEST(OptContext, PerPassDeltasSumAndInvocationsMatchRounds)
{
    for (const char *curve : {"BN254N", "BLS24-509"}) {
        SCOPED_TRACE(curve);
        Module m = rawTrace(curve);
        const OptStats stats =
            runFrontendPipeline(m, frontendPassNames());
        EXPECT_GT(stats.instrsBefore, stats.instrsAfter);
        EXPECT_EQ(stats.totalRemoved(),
                  static_cast<i64>(stats.instrsBefore) -
                      static_cast<i64>(stats.instrsAfter));
        EXPECT_GE(stats.iterations, 2); // at least one clean round
        ASSERT_EQ(stats.passes.size(), frontendPassNames().size());
        for (const PassStats &ps : stats.passes) {
            EXPECT_TRUE(ps.frontend) << ps.name;
            EXPECT_EQ(ps.invocations, stats.iterations) << ps.name;
        }
    }
}

TEST(OptContext, PipelineIsIdempotent)
{
    for (const char *curve : {"BN254N", "BLS12-381"}) {
        SCOPED_TRACE(curve);
        Module m = rawTrace(curve);
        const OptStats first =
            runFrontendPipeline(m, frontendPassNames());
        // The fixpoint converged (was not cut off by the round cap).
        EXPECT_LT(first.iterations, PassManager::kMaxFixpointIters);
        const Module converged = m;
        const OptStats second =
            runFrontendPipeline(m, frontendPassNames());
        EXPECT_EQ(second.instrsBefore, second.instrsAfter);
        EXPECT_EQ(second.totalRemoved(), 0);
        EXPECT_EQ(second.iterations, 1); // one clean round
        EXPECT_TRUE(m == converged);
    }
}

} // namespace
} // namespace finesse
