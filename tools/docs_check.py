#!/usr/bin/env python3
"""Docs lint: the user-facing surface must be documented.

Two checks, both extracted from the code (never from a hand-kept
list, so the lint cannot go stale):

  1. every finesse_cli subcommand in src/core/cliusage.h
     (the table --help renders and test_cli_help audits), and
  2. every FINESSE_* environment variable that appears as a string
     literal anywhere in src/, tools/, bench/ or tests/

must be mentioned in README.md or docs/operations.md. A name missing
from both fails the build -- adding a subcommand or env knob without
documenting it is a CI failure, not doc drift.

Usage: python3 tools/docs_check.py [--repo-root DIR]
"""

import argparse
import pathlib
import re
import sys

CODE_DIRS = ["src", "tools", "bench", "tests"]
DOC_FILES = ["README.md", "docs/operations.md"]
CODE_SUFFIXES = {".h", ".cpp", ".py"}


def cli_commands(root: pathlib.Path) -> set:
    """Subcommand names from the kCliCommands table in cliusage.h."""
    text = (root / "src/core/cliusage.h").read_text()
    m = re.search(r"kCliCommands\[\]\s*=\s*\{(.*?)\n\};", text, re.S)
    if not m:
        sys.exit("docs_check: kCliCommands table not found in cliusage.h")
    names = re.findall(r'\{"([a-z0-9-]+)"', m.group(1))
    if len(names) < 5:
        sys.exit(f"docs_check: suspiciously few commands parsed: {names}")
    return set(names)


def env_vars(root: pathlib.Path) -> set:
    """FINESSE_* env-var string literals anywhere in the code."""
    found = set()
    for d in CODE_DIRS:
        for path in (root / d).rglob("*"):
            if path.suffix not in CODE_SUFFIXES or not path.is_file():
                continue
            found.update(
                re.findall(r'"(FINESSE_[A-Z0-9_]+)"', path.read_text()))
    if not found:
        sys.exit("docs_check: no FINESSE_* env vars found -- broken scan?")
    return found


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--repo-root", default=".")
    args = ap.parse_args()
    root = pathlib.Path(args.repo_root)

    docs = ""
    for rel in DOC_FILES:
        path = root / rel
        if not path.is_file():
            print(f"docs_check: FAIL: required doc {rel} is missing")
            return 1
        docs += path.read_text()

    missing = []
    for name in sorted(cli_commands(root)):
        if name not in docs:
            missing.append(f"finesse_cli subcommand `{name}`")
    for name in sorted(env_vars(root)):
        if name not in docs:
            missing.append(f"environment variable {name}")

    if missing:
        print("docs_check: FAIL: undocumented surface (add to README.md "
              "or docs/operations.md):")
        for item in missing:
            print(f"  - {item}")
        return 1

    print(f"docs_check: OK: {len(cli_commands(root))} subcommands and "
          f"{len(env_vars(root))} env vars all documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
