/**
 * @file
 * finesse-cli: command-line front end of the framework (the paper's
 * "modular invocation with command-line parameters").
 *
 * Usage:
 *   finesse_cli <command> [config-file]
 * Commands:
 *   compile    trace + optimize + schedule + encode; print statistics
 *   validate   compile, then cross-validate on the functional simulator
 *   simulate   compile, then cycle-accurate simulation
 *   area       compile, then area/timing report (1/4/8 cores)
 *   dse        exhaustive operator-variant search on the configured hw
 *   disasm     compile and print the binary head
 *   deploy     compile and save a program image:
 *                finesse_cli deploy <config> <image-file>
 *   exec       execute a saved image on hex inputs:
 *                finesse_cli exec <image-file> 0x12 0x34 ...
 * The config file uses `key = value` lines (see core/options.h); when
 * omitted, defaults (BN254N, paper hardware model) apply.
 */
#include <cstdio>
#include <fstream>
#include <sstream>

#include "dse/explorer.h"
#include "core/options.h"
#include "isa/progio.h"
#include "sim/binary.h"

using namespace finesse;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: finesse_cli "
                 "{compile|validate|simulate|area|dse|disasm} "
                 "[config-file]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];

    Config cfg;
    if (argc > 2) {
        std::ifstream in(argv[2]);
        if (!in) {
            std::fprintf(stderr, "cannot open config: %s\n", argv[2]);
            return 1;
        }
        std::ostringstream text;
        text << in.rdbuf();
        cfg = Config::parse(text.str());
    }

    try {
        if (command == "exec") {
            if (argc < 3)
                return usage();
            BigInt p;
            const EncodedProgram prog = loadProgramFile(argv[2], p);
            std::vector<BigInt> inputs;
            for (int i = 3; i < argc; ++i)
                inputs.push_back(BigInt::fromString(argv[i]));
            FpCtx fp(p);
            const auto out = runEncoded(prog, fp, inputs);
            for (const BigInt &v : out)
                std::printf("%s\n", v.toHexString().c_str());
            return 0;
        }

        const std::string curve = curveFromConfig(cfg);
        const CompileOptions opt = optionsFromConfig(cfg);
        Framework fw(curve);
        std::printf("curve %s | hw %s\n", curve.c_str(),
                    opt.hw.describe().c_str());

        if (command == "dse") {
            Explorer ex(curve);
            const DsePoint best =
                ex.exploreVariants(opt.hw, Objective::MinCycles, true);
            std::printf("best combo: %lld cycles, IPC %.2f, %.2f mm^2, "
                        "%.1f us\n",
                        static_cast<long long>(best.cycles), best.ipc,
                        best.areaMm2, best.latencyUs);
            for (int d : ex.towerDegrees()) {
                std::printf("  level %-2d mul=%s\n", d,
                            toString(best.variants.level(d).mul));
            }
            return 0;
        }

        const CompileResult res = fw.compile(opt);
        std::printf("compiled %zu instrs (IROpt -%.1f%%), %zu bundles, "
                    "%.2f s\n",
                    res.instrs(), res.opt.reductionPct(),
                    res.binary.numBundles, res.compileSeconds);

        if (command == "compile") {
            return 0;
        } else if (command == "validate") {
            const ValidationReport rep = fw.validate(res, 3, opt.part);
            std::printf("validation: %d/%d SSA, %d/%d register file\n",
                        rep.moduleMatches, rep.vectors,
                        rep.allocatedMatches, rep.vectors);
            return rep.allPassed() ? 0 : 1;
        } else if (command == "simulate") {
            const CycleStats sim = fw.simulate(res);
            std::printf("cycles %lld, IPC %.3f, bubbles %lld\n",
                        static_cast<long long>(sim.totalCycles),
                        sim.ipc(),
                        static_cast<long long>(sim.bubbles));
            return 0;
        } else if (command == "area") {
            TimingModel timing;
            const double mhz = timing.frequencyMHz(fw.info().logP(),
                                                   opt.hw.longLat);
            const CycleStats sim = fw.simulate(res);
            for (int cores : {1, 4, 8}) {
                const AreaReport a = fw.area(res, cores);
                std::printf("%d-core: %s | %.0f MHz | %.1f kops | "
                            "%.2f kops/mm^2\n",
                            cores, a.describe().c_str(), mhz,
                            cores * mhz * 1e3 / double(sim.totalCycles),
                            cores * mhz * 1e3 / double(sim.totalCycles) /
                                a.totalArea);
            }
            return 0;
        } else if (command == "disasm") {
            std::printf("%s", res.binary.disassemble(24).c_str());
            return 0;
        } else if (command == "deploy") {
            if (argc < 4)
                return usage();
            saveProgramFile(argv[3], res.binary, fw.info().p);
            std::printf("program image written to %s (%zu words, "
                        "%zu constants)\n",
                        argv[3], res.binary.words.size(),
                        res.binary.constPool.size());
            return 0;
        }
        return usage();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
