/**
 * @file
 * finesse-cli: command-line front end of the framework (the paper's
 * "modular invocation with command-line parameters").
 *
 * Usage: finesse_cli <command> [config-file] [flags]
 *
 * Every command and flag is documented in core/cliusage.h — the one
 * table `--help` renders and tests/test_cli_help.cpp audits (a flag
 * parsed here but missing there fails the build's test suite, so the
 * help can't drift). The config file uses `key = value` lines (see
 * core/options.h); when omitted, defaults (BN254N, paper hardware
 * model) apply.
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "dse/distributor.h"
#include "dse/explorer.h"
#include "dse/search.h"
#include "core/cliusage.h"
#include "core/options.h"
#include "isa/progio.h"
#include "serve/servecli.h"
#include "sim/binary.h"
#include "support/diskcache.h"
#include "support/threadpool.h"

using namespace finesse;

namespace {

int
usage()
{
    std::fputs(cliUsageText().c_str(), stderr);
    return 2;
}

/** Per-pass attribution table (instr deltas sum to the aggregate). */
void
printPassStats(const OptStats &opt)
{
    std::printf("%-16s %6s %12s %10s %10s\n", "pass", "runs",
                "instr delta", "share", "seconds");
    i64 sum = 0;
    double seconds = 0.0;
    for (const PassStats &ps : opt.passes) {
        sum += ps.instrsRemoved;
        seconds += ps.seconds;
        const double share =
            opt.instrsBefore
                ? 100.0 * double(ps.instrsRemoved) /
                      double(opt.instrsBefore)
                : 0.0;
        std::printf("%-16s %6d %12lld %9.2f%% %10.3f\n",
                    ps.name.c_str(), ps.invocations,
                    static_cast<long long>(ps.instrsRemoved), share,
                    ps.seconds);
    }
    std::printf("%-16s %6s %12lld %9.2f%% %10.3f\n", "total", "",
                static_cast<long long>(sum),
                opt.reductionPct(), seconds);
    std::printf("aggregate: %zu -> %zu instrs in %d fixpoint sweeps "
                "(per-pass deltas sum to %lld, aggregate delta %lld)\n",
                opt.instrsBefore, opt.instrsAfter, opt.iterations,
                static_cast<long long>(sum),
                static_cast<long long>(opt.instrsBefore) -
                    static_cast<long long>(opt.instrsAfter));
}

/** Strict parse of a non-negative --flag=N value; -1 on junk. */
int
parseCount(const std::string &value)
{
    size_t consumed = 0;
    int n;
    try {
        n = std::stoi(value, &consumed);
    } catch (...) {
        return -1;
    }
    if (consumed != value.size()) // reject "4x", "1O", ...
        return -1;
    return n >= 0 ? n : -1;
}

} // namespace

int
main(int argc, char **argv)
{
    // Worker mode: the master re-executes this binary as
    // `finesse_cli dse-worker` and speaks the wire protocol over the
    // spawned pipes; nothing else on the command line applies.
    if (const std::optional<int> rc = maybeRunDseWorkerMain(argc, argv))
        return *rc;

    std::vector<std::string> positional;
    bool passStats = false;
    bool noTraceCache = false;
    int jobs = -1; // -1 = not on the command line; config/default wins
    int dseWorkers = -1;
    std::string passList;
    std::string dseTransport;
    std::string dseHosts;
    u64 searchSeed = 1;
    int generations = 8;
    int population = 32;
    Objective objective = Objective::MaxThptPerArea;
    bool haveArtifactCache = false;
    std::string artifactCacheDir;
    ServeCliOptions serveOpts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "help") {
            std::fputs(cliUsageText().c_str(), stdout);
            return 0;
        }
        if (arg == "--pass-stats") {
            passStats = true;
        } else if (arg == "--no-trace-cache") {
            noTraceCache = true;
        } else if (arg.rfind("--passes=", 0) == 0) {
            passList = arg.substr(9);
        } else if (arg.rfind("--jobs=", 0) == 0) {
            jobs = parseCount(arg.substr(7));
            if (jobs < 0) {
                std::fprintf(stderr, "bad --jobs value: %s\n",
                             arg.c_str());
                return usage();
            }
        } else if (arg.rfind("--dse-workers=", 0) == 0) {
            dseWorkers = parseCount(arg.substr(14));
            if (dseWorkers < 0) {
                std::fprintf(stderr, "bad --dse-workers value: %s\n",
                             arg.c_str());
                return usage();
            }
        } else if (arg.rfind("--dse-transport=", 0) == 0) {
            dseTransport = arg.substr(16);
            if (dseTransport != "pipe" &&
                dseTransport != "loopback-tcp") {
                std::fprintf(stderr, "bad --dse-transport value: %s\n",
                             arg.c_str());
                return usage();
            }
        } else if (arg.rfind("--dse-hosts=", 0) == 0) {
            dseHosts = arg.substr(12);
        } else if (arg.rfind("--search-seed=", 0) == 0) {
            char *end = nullptr;
            const std::string v = arg.substr(14);
            searchSeed = std::strtoull(v.c_str(), &end, 0);
            if (v.empty() || end == nullptr || *end != '\0') {
                std::fprintf(stderr, "bad --search-seed value: %s\n",
                             arg.c_str());
                return usage();
            }
        } else if (arg.rfind("--generations=", 0) == 0) {
            generations = parseCount(arg.substr(14));
            if (generations <= 0) {
                std::fprintf(stderr, "bad --generations value: %s\n",
                             arg.c_str());
                return usage();
            }
        } else if (arg.rfind("--population=", 0) == 0) {
            population = parseCount(arg.substr(13));
            if (population <= 0) {
                std::fprintf(stderr, "bad --population value: %s\n",
                             arg.c_str());
                return usage();
            }
        } else if (arg.rfind("--objective=", 0) == 0) {
            const std::string v = arg.substr(12);
            if (v == "cycles") {
                objective = Objective::MinCycles;
            } else if (v == "throughput") {
                objective = Objective::MaxThroughput;
            } else if (v == "thpt-per-area") {
                objective = Objective::MaxThptPerArea;
            } else if (v == "area") {
                objective = Objective::MinArea;
            } else {
                std::fprintf(stderr, "bad --objective value: %s\n",
                             arg.c_str());
                return usage();
            }
        } else if (arg.rfind("--artifact-cache=", 0) == 0) {
            haveArtifactCache = true;
            artifactCacheDir = arg.substr(17);
        } else if (arg.rfind("--batch=", 0) == 0) {
            serveOpts.engine.batchSize = parseCount(arg.substr(8));
            if (serveOpts.engine.batchSize <= 0) {
                std::fprintf(stderr, "bad --batch value: %s\n",
                             arg.c_str());
                return usage();
            }
        } else if (arg.rfind("--queue=", 0) == 0) {
            serveOpts.engine.maxQueue = parseCount(arg.substr(8));
            if (serveOpts.engine.maxQueue <= 0) {
                std::fprintf(stderr, "bad --queue value: %s\n",
                             arg.c_str());
                return usage();
            }
        } else if (arg.rfind("--linger-ms=", 0) == 0) {
            serveOpts.engine.lingerMs = parseCount(arg.substr(12));
            if (serveOpts.engine.lingerMs < 0) {
                std::fprintf(stderr, "bad --linger-ms value: %s\n",
                             arg.c_str());
                return usage();
            }
        } else if (arg.rfind("--serve-port=", 0) == 0) {
            serveOpts.servePort = parseCount(arg.substr(13));
            if (serveOpts.servePort < 0 || serveOpts.servePort > 65535) {
                std::fprintf(stderr, "bad --serve-port value: %s\n",
                             arg.c_str());
                return usage();
            }
        } else if (arg.rfind("--serve-seed=", 0) == 0) {
            char *end = nullptr;
            const std::string v = arg.substr(13);
            serveOpts.engine.seed = std::strtoull(v.c_str(), &end, 0);
            if (v.empty() || end == nullptr || *end != '\0') {
                std::fprintf(stderr, "bad --serve-seed value: %s\n",
                             arg.c_str());
                return usage();
            }
        } else if (arg.rfind("--workload=", 0) == 0) {
            serveOpts.workload = arg.substr(11);
        } else if (arg.rfind("--corrupt=", 0) == 0) {
            serveOpts.corrupt = arg.substr(10);
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
            return usage();
        } else {
            positional.push_back(arg);
        }
    }
    if (positional.empty())
        return usage();
    const std::string command = positional[0];

    if (haveArtifactCache) {
        // Export before anything spawns so dse workers inherit it;
        // an empty DIR explicitly disables the cache.
        if (artifactCacheDir.empty())
            unsetenv(kArtifactCacheEnv);
        else
            setenv(kArtifactCacheEnv, artifactCacheDir.c_str(), 1);
        configureArtifactCache(artifactCacheDir);
    }

    Config cfg;
    if (positional.size() > 1 && command != "exec") {
        std::ifstream in(positional[1]);
        if (!in) {
            std::fprintf(stderr, "cannot open config: %s\n",
                         positional[1].c_str());
            return 1;
        }
        std::ostringstream text;
        text << in.rdbuf();
        cfg = Config::parse(text.str());
    }

    try {
        if (command == "exec") {
            if (positional.size() < 2)
                return usage();
            BigInt p;
            const EncodedProgram prog =
                loadProgramFile(positional[1], p);
            std::vector<BigInt> inputs;
            for (size_t i = 2; i < positional.size(); ++i)
                inputs.push_back(BigInt::fromString(positional[i]));
            FpCtx fp(p);
            const auto out = runEncoded(prog, fp, inputs);
            for (const BigInt &v : out)
                std::printf("%s\n", v.toHexString().c_str());
            return 0;
        }

        const std::string curve = curveFromConfig(cfg);
        CompileOptions opt = optionsFromConfig(cfg);
        if (!passList.empty())
            opt.passes = parsePassList(passList);
        if (noTraceCache)
            opt.useTraceCache = false;
        if (jobs >= 0)
            opt.jobs = jobs;
        if (dseWorkers >= 0)
            opt.dseWorkers = dseWorkers;
        Framework fw(curve);
        std::printf("curve %s | hw %s\n", curve.c_str(),
                    opt.hw.describe().c_str());

        if (command == "serve" || command == "verify-batch") {
            serveOpts.curve = curve;
            serveOpts.compile = opt; // warmup compiles what dse would
            if (jobs >= 0)
                serveOpts.engine.jobs = jobs;
            return command == "serve"
                       ? runServeCommand(serveOpts)
                       : runVerifyBatchCommand(serveOpts);
        }

        DistributorStats dstats;
        DistributorOptions dopts;
        applyDistributorConfig(cfg, dopts);
        if (dseTransport == "pipe")
            dopts.transport = DseTransport::Pipe;
        else if (dseTransport == "loopback-tcp")
            dopts.transport = DseTransport::LoopbackTcp;
        if (!dseHosts.empty()) {
            dopts.hosts.clear();
            size_t from = 0;
            while (from <= dseHosts.size()) {
                size_t comma = dseHosts.find(',', from);
                if (comma == std::string::npos)
                    comma = dseHosts.size();
                if (comma > from)
                    dopts.hosts.push_back(
                        dseHosts.substr(from, comma - from));
                from = comma + 1;
            }
        }
        dopts.stats = &dstats;

        if (command == "dse") {
            Explorer ex(curve);
            // The sweep inherits the configured pipeline/cache options;
            // only the operator variants are explored, fanned out over
            // opt.jobs worker threads (identical result for any value).
            const auto t0 = std::chrono::steady_clock::now();
            const DsePoint best =
                ex.exploreVariants(opt, Objective::MinCycles, true,
                                   dopts);
            const double sweepSeconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            const TraceCacheStats cache = traceCacheStats();
            if (opt.dseWorkers > 0) {
                std::printf("swept %zu combos on %d worker processes "
                            "in %.2f s\n",
                            ex.variantSpace(true).size(),
                            opt.dseWorkers, sweepSeconds);
                std::printf("distributor: %s\n",
                            dstats.describe().c_str());
            } else {
                std::printf("swept %zu combos on %d workers in %.2f s "
                            "(trace cache: %zu miss, %zu hit, "
                            "%zu coalesced)\n",
                            ex.variantSpace(true).size(),
                            resolveJobs(opt.jobs), sweepSeconds,
                            cache.misses, cache.hits, cache.coalesced);
            }
            std::printf("best combo: %lld cycles, IPC %.2f, %.2f mm^2, "
                        "%.1f us\n",
                        static_cast<long long>(best.cycles), best.ipc,
                        best.areaMm2, best.latencyUs);
            if (passStats)
                printPassStats(best.opt);
            for (int d : ex.towerDegrees()) {
                std::printf("  level %-2d mul=%s\n", d,
                            toString(best.variants.level(d).mul));
            }
            return 0;
        }

        if (command == "dse-search") {
            Explorer ex(curve);
            SearchOptions sopt;
            sopt.seed = searchSeed;
            sopt.generations = generations;
            sopt.population = population;
            sopt.objective = objective;
            sopt.base = opt;
            sopt.dopts = dopts;
            const auto t0 = std::chrono::steady_clock::now();
            ParetoSearch search(ex, SearchSpace::standard(ex), sopt);
            const SearchResult sres = search.run();
            const double seconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            const TraceCacheStats cache = traceCacheStats();
            const DiskCache *dc = artifactCache();
            std::printf("searched %zu unique points of a %llu-point "
                        "space in %d generations, %.2f s\n",
                        sres.stats.evaluatedUnique,
                        static_cast<unsigned long long>(
                            sres.stats.spaceSize),
                        generations, seconds);
            std::printf("trace cache: %zu miss, %zu hit "
                        "(disk: %zu hit, %zu put)\n",
                        cache.misses, cache.hits, cache.diskHits,
                        cache.diskPuts);
            if (dc != nullptr) {
                std::printf("artifact cache %s: %zu point hits, "
                            "%zu point puts\n",
                            dc->dir().c_str(),
                            sres.stats.pointCacheHits,
                            sres.stats.pointCachePuts);
            }
            if (opt.dseWorkers > 0)
                std::printf("distributor: %s\n",
                            dstats.describe().c_str());
            std::printf("Pareto frontier (%zu points, fingerprint "
                        "%016llx):\n",
                        sres.frontier.size(),
                        static_cast<unsigned long long>(
                            frontierFingerprint(sres.frontier)));
            std::printf("  %-34s %10s %8s %12s %12s\n", "design",
                        "cycles", "mm^2", "ops/s", "ops/s/mm^2");
            for (const DsePoint &p : sres.frontier) {
                std::printf("  %-34s %10lld %8.2f %12.1f %12.1f\n",
                            p.label.c_str(),
                            static_cast<long long>(p.cycles), p.areaMm2,
                            p.throughputOps, p.thptPerArea);
            }
            const char *objName =
                objective == Objective::MinCycles        ? "cycles"
                : objective == Objective::MaxThroughput  ? "throughput"
                : objective == Objective::MaxThptPerArea ? "thpt-per-area"
                                                         : "area";
            std::printf("best (%s): %s | %lld cycles | %.2f mm^2 | "
                        "%.1f ops/s\n",
                        objName, sres.best.label.c_str(),
                        static_cast<long long>(sres.best.cycles),
                        sres.best.areaMm2, sres.best.throughputOps);
            if (passStats)
                printPassStats(sres.best.opt);
            return 0;
        }

        const CompileResult res = fw.compile(opt);
        std::printf("compiled %zu instrs (IROpt -%.1f%%), %zu bundles, "
                    "%.2f s\n",
                    res.instrs(), res.opt.reductionPct(),
                    res.binary.numBundles, res.compileSeconds);
        if (passStats)
            printPassStats(res.opt);

        if (command == "compile") {
            return 0;
        } else if (command == "validate") {
            const ValidationReport rep = fw.validate(res, 3, opt.part);
            std::printf("validation: %d/%d SSA, %d/%d register file\n",
                        rep.moduleMatches, rep.vectors,
                        rep.allocatedMatches, rep.vectors);
            return rep.allPassed() ? 0 : 1;
        } else if (command == "simulate") {
            const CycleStats sim = fw.simulate(res);
            std::printf("cycles %lld, IPC %.3f, bubbles %lld\n",
                        static_cast<long long>(sim.totalCycles),
                        sim.ipc(),
                        static_cast<long long>(sim.bubbles));
            return 0;
        } else if (command == "area") {
            TimingModel timing;
            const double mhz = timing.frequencyMHz(fw.info().logP(),
                                                   opt.hw.longLat);
            const CycleStats sim = fw.simulate(res);
            for (int cores : {1, 4, 8}) {
                const AreaReport a = fw.area(res, cores);
                std::printf("%d-core: %s | %.0f MHz | %.1f kops | "
                            "%.2f kops/mm^2\n",
                            cores, a.describe().c_str(), mhz,
                            cores * mhz * 1e3 / double(sim.totalCycles),
                            cores * mhz * 1e3 / double(sim.totalCycles) /
                                a.totalArea);
            }
            return 0;
        } else if (command == "disasm") {
            std::printf("%s", res.binary.disassemble(24).c_str());
            return 0;
        } else if (command == "deploy") {
            if (positional.size() < 3)
                return usage();
            saveProgramFile(positional[2], res.binary, fw.info().p);
            std::printf("program image written to %s (%zu words, "
                        "%zu constants)\n",
                        positional[2].c_str(), res.binary.words.size(),
                        res.binary.constPool.size());
            return 0;
        }
        return usage();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
