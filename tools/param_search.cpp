/**
 * @file
 * Curve-parameter verification and search tool. Checks candidate family
 * parameters x for BN / BLS12 / BLS24 (p and r prime, target bit
 * lengths from Table 2 of the paper) and, when a candidate fails,
 * searches nearby low-Hamming-weight values. The verified values are
 * baked into src/curve/catalog.cpp.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "bigint/bigint.h"

using namespace finesse;

namespace {

struct FamilyParams
{
    BigInt p, r, t;
};

FamilyParams
bn(const BigInt &x)
{
    const BigInt x2 = x * x;
    const BigInt x3 = x2 * x;
    const BigInt x4 = x2 * x2;
    FamilyParams f;
    f.p = BigInt(u64{36}) * x4 + BigInt(u64{36}) * x3 +
          BigInt(u64{24}) * x2 + BigInt(u64{6}) * x + BigInt(u64{1});
    f.t = BigInt(u64{6}) * x2 + BigInt(u64{1});
    f.r = f.p + BigInt(u64{1}) - f.t;
    return f;
}

FamilyParams
bls12(const BigInt &x)
{
    const BigInt x2 = x * x;
    FamilyParams f;
    f.r = x2 * x2 - x2 + BigInt(u64{1});
    f.t = x + BigInt(u64{1});
    f.p = ((x - BigInt(u64{1})).pow(2) * f.r) / BigInt(u64{3}) + x;
    return f;
}

FamilyParams
bls24(const BigInt &x)
{
    const BigInt x4 = (x * x).pow(2);
    FamilyParams f;
    f.r = x4 * x4 - x4 + BigInt(u64{1});
    f.t = x + BigInt(u64{1});
    f.p = ((x - BigInt(u64{1})).pow(2) * f.r) / BigInt(u64{3}) + x;
    return f;
}

bool
check(const std::string &name, const std::string &family, const BigInt &x,
      int wantP, int wantR, bool verbose = true)
{
    FamilyParams f;
    if (family == "bn") {
        f = bn(x);
    } else if (family == "bls12") {
        if (!(x.mod(BigInt(u64{3})) == BigInt(u64{1})))
            return false;
        f = bls12(x);
        const BigInt rec =
            ((x - BigInt(u64{1})).pow(2) * f.r) % BigInt(u64{3});
        if (!rec.isZero())
            return false;
    } else {
        if (!(x.mod(BigInt(u64{3})) == BigInt(u64{1})))
            return false;
        f = bls24(x);
    }
    const bool ok = f.p.bitLength() == wantP && f.r.bitLength() == wantR &&
                    (f.p % BigInt(u64{6})) == BigInt(u64{1}) &&
                    isProbablePrime(f.p) && isProbablePrime(f.r);
    if (verbose || ok) {
        std::printf("%-12s x=%s  log p=%d  log r=%d  p%%6=%s  pP=%d rP=%d%s\n",
                    name.c_str(), x.toHexString().c_str(), f.p.bitLength(),
                    f.r.bitLength(), (f.p % BigInt(u64{6})).toString().c_str(),
                    isProbablePrime(f.p), isProbablePrime(f.r),
                    ok ? "  OK" : "");
    }
    return ok;
}

/** Search x with |x| around 2^bits and low Hamming weight. */
void
searchBls(const std::string &family, int bitsLow, int bitsHigh, int wantP,
          int wantR, bool negative)
{
    // Enumerate x = +-(2^a +- 2^b +- 2^c +- 1) style combinations.
    for (int a = bitsLow; a <= bitsHigh; ++a) {
        for (int b = 1; b < a; ++b) {
            for (int c = 0; c < b; ++c) {
                for (int sb = -1; sb <= 1; sb += 2) {
                    for (int sc = -1; sc <= 1; sc += 2) {
                        BigInt x = (BigInt(u64{1}) << a);
                        x = sb > 0 ? x + (BigInt(u64{1}) << b)
                                   : x - (BigInt(u64{1}) << b);
                        x = sc > 0 ? x + (BigInt(u64{1}) << c)
                                   : x - (BigInt(u64{1}) << c);
                        if (negative)
                            x = -x;
                        if (check("cand", family, x, wantP, wantR, false)) {
                            std::printf("FOUND %s: x = %s%s\n",
                                        family.c_str(),
                                        negative ? "-" : "",
                                        x.abs().toHexString().c_str());
                            return;
                        }
                    }
                }
            }
        }
    }
    std::printf("search failed for %s\n", family.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    // Known / recalled candidates.
    const BigInt bn254n = -((BigInt(u64{1}) << 62) + (BigInt(u64{1}) << 55) +
                            BigInt(u64{1}));
    check("BN254N", "bn", bn254n, 254, 254);

    const BigInt bn462 = (BigInt(u64{1}) << 114) + (BigInt(u64{1}) << 101) -
                         (BigInt(u64{1}) << 14) - BigInt(u64{1});
    check("BN462", "bn", bn462, 462, 462);

    const BigInt bn638 = (BigInt(u64{1}) << 158) - (BigInt(u64{1}) << 128) -
                         (BigInt(u64{1}) << 68) + BigInt(u64{1});
    check("BN638", "bn", bn638, 638, 638);

    const BigInt bls381 =
        -((BigInt(u64{1}) << 63) + (BigInt(u64{1}) << 62) +
          (BigInt(u64{1}) << 60) + (BigInt(u64{1}) << 57) +
          (BigInt(u64{1}) << 48) + (BigInt(u64{1}) << 16));
    check("BLS12-381", "bls12", bls381, 381, 255);

    const BigInt bls446 =
        -((BigInt(u64{1}) << 74) + (BigInt(u64{1}) << 73) +
          (BigInt(u64{1}) << 63) + (BigInt(u64{1}) << 57) +
          (BigInt(u64{1}) << 50) + (BigInt(u64{1}) << 17) + BigInt(u64{1}));
    check("BLS12-446", "bls12", bls446, 446, 299);

    const BigInt bls24509 = -((BigInt(u64{1}) << 51) +
                              (BigInt(u64{1}) << 28) -
                              (BigInt(u64{1}) << 11) + BigInt(u64{1}));
    check("BLS24-509", "bls24", bls24509, 509, 408);

    if (argc > 1 && std::string(argv[1]) == "search") {
        // BLS12-638: log p = 638, log r = 427 -> |x| ~ 107 bits.
        searchBls("bls12", 106, 107, 638, 427, true);
        searchBls("bls12", 106, 107, 638, 427, false);
        // Fallback searches for any primary candidate that failed above.
        searchBls("bls24", 50, 50, 509, 408, true);
        searchBls("bls24", 50, 50, 509, 408, false);
    }
    return 0;
}
