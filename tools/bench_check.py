#!/usr/bin/env python3
"""Bench-regression gate for the BENCH_*.json trend files.

Compares every numeric field whose name contains "speedup" in the
freshly produced bench JSONs against the committed baselines under
bench/baselines/. The AGGREGATE fields (exact names in GATED_FIELDS:
whole-catalog / whole-sweep ratios, the stable measurements) fail the
job (exit 1) on a drop beyond the allowed fraction (default 20%);
per-curve speedup fields are compared and printed but only warn --
individual curves (especially the smallest, fastest-compiling ones)
swing well over 10% run-to-run on the same machine, so hard-gating
them would make CI flaky without adding signal. Correctness is gated
elsewhere (the benches exit non-zero on identity mismatches); this
script only guards the performance trajectory.

Baselines are refreshed by copying a healthy run's BENCH_*.json over
bench/baselines/ and committing (an intentional perf trade-off lands
together with its new baseline).

Usage:
    python3 tools/bench_check.py \
        --baseline-dir bench/baselines --current-dir build-release \
        [--max-regression 0.20]
"""

import argparse
import glob
import json
import os
import sys

# Aggregate speedup fields that hard-fail the gate; any other field
# containing "speedup" (per-curve rows, raw uncapped ratios) is
# advisory. warm_speedup is fig_search's capped warm-cache ratio; the
# cap keeps its denominator out of the flaky-milliseconds regime, so
# it is stable enough to gate.
GATED_FIELDS = {
    "speedup",
    "largest_speedup",
    "distributed_speedup",
    "warm_speedup",
}


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def comparable(baseline, current):
    """Baselines only bind when produced by the same bench shape.

    The fast/full mode of a bench changes its curve set; comparing
    speedups across modes would be apples to oranges. A shape change
    therefore skips the file (with a loud warning) instead of
    producing a bogus regression verdict.
    """
    for key in ("bench", "curve", "curves", "models", "mode"):
        if key in baseline and key in current and baseline[key] != current[key]:
            return False, key
    return True, None


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline-dir", required=True)
    ap.add_argument("--current-dir", required=True)
    ap.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="allowed fractional drop per speedup field (default 0.20)",
    )
    args = ap.parse_args()

    baseline_files = sorted(
        glob.glob(os.path.join(args.baseline_dir, "BENCH_*.json"))
    )
    if not baseline_files:
        print(f"bench_check: no baselines under {args.baseline_dir}",
              file=sys.stderr)
        return 1

    failures = []
    compared = 0
    for base_path in baseline_files:
        name = os.path.basename(base_path)
        cur_path = os.path.join(args.current_dir, name)
        if not os.path.exists(cur_path):
            failures.append(f"{name}: missing from {args.current_dir} "
                            "(bench did not run or did not write JSON)")
            continue
        baseline = load(base_path)
        current = load(cur_path)

        ok, key = comparable(baseline, current)
        if not ok:
            print(f"WARNING {name}: '{key}' differs between baseline "
                  f"({baseline[key]!r}) and current ({current[key]!r}); "
                  "skipping -- regenerate the baseline for this mode")
            continue

        for field, base_val in baseline.items():
            if "speedup" not in field:
                continue
            if not isinstance(base_val, (int, float)) or base_val <= 0:
                continue
            cur_val = current.get(field)
            if not isinstance(cur_val, (int, float)):
                failures.append(f"{name}: field '{field}' missing from "
                                "current run")
                continue
            compared += 1
            ratio = cur_val / base_val
            verdict = "OK"
            if ratio < 1.0 - args.max_regression:
                if field in GATED_FIELDS:
                    verdict = "REGRESSION"
                    failures.append(
                        f"{name}: {field} regressed {base_val:.3f} -> "
                        f"{cur_val:.3f} ({(1.0 - ratio) * 100:.1f}% "
                        f"drop, allowed "
                        f"{args.max_regression * 100:.0f}%)")
                else:
                    verdict = "WARN"
            print(f"{verdict:10s} {name} {field}: baseline "
                  f"{base_val:.3f}, current {cur_val:.3f} "
                  f"({ratio:.0%} of baseline)")

    if compared == 0 and not failures:
        # A gate that silently compares nothing is worse than no gate.
        print("bench_check: no speedup fields compared", file=sys.stderr)
        return 1
    if failures:
        print("\nbench_check: FAILED", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"\nbench_check: {compared} speedup fields compared; all "
          f"gated fields within {args.max_regression * 100:.0f}% of "
          "baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
