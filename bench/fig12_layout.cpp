/**
 * @file
 * Figure 12 reproduction: quad-core chip summary (the paper shows the
 * physical layout; we reproduce the summary table from the same design
 * point: area, gate count, SRAM capacity, frequency, pairing delay and
 * throughput).
 */
#include "bench_common.h"
#include "dse/explorer.h"

using namespace finesse;

int
main()
{
    banner("Figure 12: quad-core chip summary (BN254N)");
    Framework fw("BN254N");
    const CompileResult res = fw.compile(CompileOptions{});
    const CycleStats sim = simulateCycles(res.prog);
    const AreaReport area = fw.area(res, 4);
    TimingModel timing;
    const int bits = fw.info().logP();
    const double mhz = timing.frequencyMHz(bits, 38);
    const double delayUs = double(sim.totalCycles) / mhz;
    const double kops = 4 * mhz * 1e3 / double(sim.totalCycles);

    // Logic gates: everything that is not a memory macro.
    const double logicMm2 =
        4 * (area.mmulArea + area.aluOther) + area.otherArea;
    const double gatesK = logicMm2 * 1e6 / AreaModel::kNand2Um2 / 1e3;
    // SRAM capacity: IMem + 4x DMem.
    size_t dmemWords = 0;
    for (i32 w : res.prog.regs.maxRegsPerBank)
        dmemWords += static_cast<size_t>(w);
    const double sramKiB =
        (double(res.binary.imemBits()) +
         4.0 * double(dmemWords) * bits) /
        8.0 / 1024.0;

    TextTable t;
    t.header({"Item", "Value", "Paper (40nm LP)"});
    t.row({"Technology", "40nm LP (model)", "40nm LP"});
    t.row({"Typical Voltage", "1.1V", "1.1V"});
    t.row({"Area", fmt(area.totalArea, 3) + " mm^2", "7.992 mm^2"});
    t.row({"Gate Count (logic)", fmt(gatesK, 1) + "k NAND2",
           "3558.9k NAND2"});
    t.row({"SRAM Size", fmt(sramKiB, 0) + " KiB", "272 KiB"});
    t.row({"Frequency", fmt(mhz, 0) + " MHz", "833 MHz"});
    t.row({"Pairing Curve", "BN254N", "BN254N"});
    t.row({"Pairing Delay", fmt(delayUs, 1) + " us", "76.3 us"});
    t.row({"Pairing Throughput", fmt(kops, 1) + " kops", "52.4 kops"});
    t.print();
    return 0;
}
