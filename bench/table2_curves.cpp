/**
 * @file
 * Table 2 reproduction: parameters of the supported pairing-friendly
 * curves (bit lengths, embedding degree, k*log p, recorded SexTNFS
 * security levels).
 */
#include "bench_common.h"
#include "curve/catalog.h"

using namespace finesse;

int
main()
{
    banner("Table 2: pairing-friendly curve parameters");
    TextTable t;
    t.header({"Curve", "log|t|", "log p", "log r", "k", "k*log p",
              "Security(bit)"});
    for (const CurveDef &def : curveCatalog()) {
        const CurveInfo info = deriveCurveInfo(def);
        t.row({def.name, std::to_string(def.x.abs().bitLength()),
               std::to_string(info.logP()), std::to_string(info.logR()),
               std::to_string(info.k), std::to_string(info.kLogP()),
               std::to_string(def.securityBits)});
    }
    t.print();
    std::printf("\nSecurity levels are the Barbulescu-Duquesne SexTNFS "
                "estimates recorded from the paper (Table 2).\n");
    return 0;
}
