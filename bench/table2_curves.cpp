/**
 * @file
 * Table 2 reproduction: parameters of the supported pairing-friendly
 * curves (bit lengths, embedding degree, k*log p, recorded SexTNFS
 * security levels).
 */
#include "bench_common.h"
#include "curve/catalog.h"
#include "support/threadpool.h"

using namespace finesse;

int
main()
{
    banner("Table 2: pairing-friendly curve parameters");
    TextTable t;
    t.header({"Curve", "log|t|", "log p", "log r", "k", "k*log p",
              "Security(bit)"});
    // Parameter derivation runs primality tests on multi-hundred-bit
    // candidates; the curves are independent, so derive them on the
    // pool and print in catalog order.
    const std::vector<CurveDef> &defs = curveCatalog();
    std::vector<CurveInfo> infos(defs.size());
    parallelFor(defs.size(), 0, [&](size_t i) {
        infos[i] = deriveCurveInfo(defs[i]);
    });
    for (size_t i = 0; i < defs.size(); ++i) {
        const CurveDef &def = defs[i];
        const CurveInfo &info = infos[i];
        t.row({def.name, std::to_string(def.x.abs().bitLength()),
               std::to_string(info.logP()), std::to_string(info.logR()),
               std::to_string(info.k), std::to_string(info.kLogP()),
               std::to_string(def.securityBits)});
    }
    t.print();
    std::printf("\nSecurity levels are the Barbulescu-Duquesne SexTNFS "
                "estimates recorded from the paper (Table 2).\n");
    return 0;
}
