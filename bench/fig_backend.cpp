/**
 * @file
 * Backend sweep engine benchmark + identity gate: times the legacy
 * per-point reference path against the batched engine, per curve,
 * across the Fig. 10 hardware-model grid, and verifies the two are
 * byte-identical.
 *
 * Reference arm (the pre-batching design-point cost): clone the
 * cached trace module, rebuild the dependence graph inside
 * scheduleModuleReference (ordered-map LegacyPortTracker), run
 * RegAlloc + full encode, then cycle-simulate on the legacy tracker.
 * Batched arm: one TracePrep per trace shared by every point, dense
 * PortTracker + reusable BackendScratch (runBackendPoint computes the
 * encoding layout instead of materializing words -- exactly what the
 * DSE metrics consume), then cycle-simulate out of the same scratch.
 *
 * Any mismatch in schedule (issueCycle, bundles, estimatedCycles),
 * register assignment, IMem footprint or simulated cycles is counted
 * and makes the bench exit non-zero (CI gate). BENCH_backend.json
 * records per-curve and aggregate wall times and the throughput
 * ratio.
 */
#include <chrono>

#include "bench_common.h"
#include "compiler/backendprep.h"
#include "dse/explorer.h"

using namespace finesse;

namespace {

double
wallSeconds(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main()
{
    banner("Backend sweep engine: reference vs batched");

    std::vector<std::string> curves;
    if (fastMode()) {
        curves = {"BN254N"};
    } else {
        for (const CurveDef &def : curveCatalog())
            curves.push_back(def.name);
    }
    const std::vector<PipelineModel> models = fig10HardwareModels();

    TextTable t;
    t.header({"Curve", "Instrs", "Points", "Ref s", "Batched s",
              "Speedup"});

    BenchJson json;
    json.str("bench", "fig_backend").count("models", models.size());

    size_t mismatches = 0;
    double totalRef = 0, totalBatched = 0;
    size_t totalPoints = 0;

    for (const std::string &curve : curves) {
        Framework fw(curve);
        OptStats stats;
        const std::shared_ptr<const Module> trace =
            fw.traceShared(CompileOptions{}, stats);
        const Module &m = *trace;

        // ---- reference arm: per-point clone + graph rebuild + maps.
        std::vector<Schedule> refScheds;
        std::vector<RegAssignment> refRegs;
        std::vector<size_t> refImem;
        std::vector<i64> refCycles;
        const auto t0 = std::chrono::steady_clock::now();
        for (const PipelineModel &hw : models) {
            const Module copy = m; // the pre-batching per-point clone
            const BankAssignment banks = assignBanks(copy, hw);
            Schedule sched =
                scheduleModuleReference(copy, banks, hw, true);
            RegAssignment regs =
                allocateRegisters(copy, banks, sched);
            CompiledProgram prog;
            prog.module = copy;
            prog.banks = banks;
            prog.schedule = sched;
            prog.regs = regs;
            prog.hw = hw;
            const EncodedProgram enc = encodeProgram(prog);
            refCycles.push_back(
                simulateCyclesReference(prog).totalCycles);
            refImem.push_back(enc.imemBits());
            refScheds.push_back(std::move(sched));
            refRegs.push_back(std::move(regs));
        }
        const double refSeconds = wallSeconds(t0);

        // ---- batched arm: shared prep, reusable scratch, dense maps.
        const auto t1 = std::chrono::steady_clock::now();
        const TracePrep prep = buildTracePrep(m);
        BackendScratch scratch;
        std::vector<i64> batchedCycles;
        size_t curveMismatches = 0;
        for (size_t h = 0; h < models.size(); ++h) {
            BackendPoint &bp = scratch.point;
            runBackendPoint(m, prep, models[h], true, scratch, bp);
            batchedCycles.push_back(
                simulateCycles(m, bp.banks, bp.schedule, models[h],
                               10000, 64, &scratch)
                    .totalCycles);
            curveMismatches += bp.schedule != refScheds[h];
            curveMismatches += bp.regs != refRegs[h];
            curveMismatches += bp.imemBits != refImem[h];
            curveMismatches += batchedCycles[h] != refCycles[h];
        }
        const double batchedSeconds = wallSeconds(t1);
        mismatches += curveMismatches;

        const double speedup =
            batchedSeconds > 0 ? refSeconds / batchedSeconds : 0.0;
        t.row({curve, fmtK(double(m.size())),
               std::to_string(models.size()), fmt(refSeconds),
               fmt(batchedSeconds), fmt(speedup) + "x"});
        json.count(curve + "_instrs", m.size())
            .num(curve + "_ref_seconds", refSeconds)
            .num(curve + "_batched_seconds", batchedSeconds)
            .num(curve + "_speedup", speedup);

        totalRef += refSeconds;
        totalBatched += batchedSeconds;
        totalPoints += models.size();
        if (curveMismatches) {
            std::printf("!! %zu identity mismatches on %s\n",
                        curveMismatches, curve.c_str());
        }
    }
    t.print();

    const double speedup =
        totalBatched > 0 ? totalRef / totalBatched : 0.0;
    std::printf(
        "\n%zu backend points | reference %.2f s (%.1f pts/s) | "
        "batched %.2f s (%.1f pts/s) | speedup %.2fx | "
        "%zu identity mismatches\n",
        totalPoints, totalRef, totalPoints / std::max(totalRef, 1e-9),
        totalBatched, totalPoints / std::max(totalBatched, 1e-9),
        speedup, mismatches);

    json.count("points", totalPoints)
        .num("ref_seconds", totalRef)
        .num("batched_seconds", totalBatched)
        .num("speedup", speedup)
        .count("identity_mismatches", mismatches);
    json.write("BENCH_backend.json");

    return mismatches == 0 ? 0 : 1;
}
