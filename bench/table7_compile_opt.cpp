/**
 * @file
 * Table 7 reproduction: compilation-strategy evaluation across all
 * catalog curves. Init = literature-level trace, program-order issue;
 * Opt = IROpt (constant/zero propagation recovering sparse
 * multiplication, GVN, DCE, strength reduction) + affinity list
 * scheduling. HW1/HW2 = pipeline model without/with the write-back
 * FIFO. Also reports compile times (paper: 8.0 s BN254N to 53.1 s
 * BLS24-509) and, per curve, the share of the reduction delivered by
 * each individual IROpt pass so Table 7 can be reproduced
 * per-optimization.
 */
#include "bench_common.h"
#include "dse/explorer.h"

using namespace finesse;

int
main()
{
    banner("Table 7: compilation strategies (instr reduction + IPC)");
    std::vector<std::string> names;
    for (const CurveDef &def : curveCatalog())
        names.push_back(def.name);
    if (fastMode())
        names = {"BN254N", "BLS12-381"};

    TextTable t;
    t.header({"Curve", "Instr Init->Opt", "Reduction", "IPC Init",
              "IPC Opt (HW1/HW2)", "Compile(s)", "Re-cfg(s)"});
    TextTable perPass;
    {
        std::vector<std::string> header = {"Curve"};
        for (const std::string &pass : frontendPassNames())
            header.push_back(pass);
        header.push_back("sum");
        perPass.header(header);
    }

    for (const std::string &name : names) {
        Framework fw(name);

        CompileOptions init;
        init.optimize = false;
        init.listSchedule = false;
        const CompileResult rInit = fw.compile(init);
        const CycleStats sInit = simulateCycles(rInit.prog);

        CompileOptions hw1;
        hw1.hw.writebackFifo = false;
        const CompileResult r1 = fw.compile(hw1);
        const CycleStats s1 = simulateCycles(r1.prog);

        CompileOptions hw2;
        hw2.hw.writebackFifo = true;
        const CompileResult r2 = fw.compile(hw2);
        const CycleStats s2 = simulateCycles(r2.prog);

        const double reduction =
            100.0 * (1.0 - double(r1.instrs()) / double(rInit.instrs()));
        t.row({name,
               fmtK(double(rInit.instrs())) + " -> " +
                   fmtK(double(r1.instrs())),
               "-" + fmt(reduction, 1) + "%", fmt(sInit.ipc()),
               fmt(s1.ipc()) + " / " + fmt(s2.ipc()),
               // HW1 is a full (trace + IROpt + backend) compile: the
               // paper's compile-time metric. HW2 shares the front end
               // through the trace cache, so its time is the
               // backend-only re-configuration cost.
               fmt(r1.compileSeconds, 1), fmt(r2.compileSeconds, 2)});

        // Per-pass attribution: each pass's instruction delta as a
        // share of the pre-IROpt instruction count. The per-pass
        // deltas sum to the aggregate reduction by construction.
        std::vector<std::string> cells = {name};
        double sum = 0.0;
        for (const std::string &pass : frontendPassNames()) {
            const double pct = r1.opt.passReductionPct(pass);
            sum += pct;
            cells.push_back("-" + fmt(pct, 2) + "%");
        }
        cells.push_back("-" + fmt(sum, 2) + "%");
        perPass.row(cells);
    }
    t.print();

    std::printf("\nPer-pass share of the Init->Opt reduction "
                "(aggregate percentages attribute every removed "
                "instruction to the pass that eliminated it):\n\n");
    perPass.print();

    std::printf("\nPaper anchors: reductions of 8.5-16.4%%; IPC "
                "0.19-0.22 -> 0.87-0.97; compile times (Compile(s), "
                "one full trace+IROpt+backend run) of seconds to "
                "under a minute. Re-cfg(s) is the backend-only cost "
                "of re-targeting the cached front-end trace at a new "
                "hardware model.\n");
    return 0;
}
