/**
 * @file
 * Table 7 reproduction: compilation-strategy evaluation across all
 * catalog curves. Init = literature-level trace, program-order issue;
 * Opt = IROpt (constant/zero propagation recovering sparse
 * multiplication, GVN, DCE, strength reduction) + affinity list
 * scheduling. HW1/HW2 = pipeline model without/with the write-back
 * FIFO. Also reports compile times (paper: 8.0 s BN254N to 53.1 s
 * BLS24-509).
 */
#include "bench_common.h"
#include "dse/explorer.h"

using namespace finesse;

int
main()
{
    banner("Table 7: compilation strategies (instr reduction + IPC)");
    std::vector<std::string> names;
    for (const CurveDef &def : curveCatalog())
        names.push_back(def.name);
    if (fastMode())
        names = {"BN254N", "BLS12-381"};

    TextTable t;
    t.header({"Curve", "Instr Init->Opt", "Reduction", "IPC Init",
              "IPC Opt (HW1/HW2)", "Compile(s)"});
    for (const std::string &name : names) {
        Framework fw(name);

        CompileOptions init;
        init.optimize = false;
        init.listSchedule = false;
        const CompileResult rInit = fw.compile(init);
        const CycleStats sInit = simulateCycles(rInit.prog);

        CompileOptions hw1;
        hw1.hw.writebackFifo = false;
        const CompileResult r1 = fw.compile(hw1);
        const CycleStats s1 = simulateCycles(r1.prog);

        CompileOptions hw2;
        hw2.hw.writebackFifo = true;
        const CompileResult r2 = fw.compile(hw2);
        const CycleStats s2 = simulateCycles(r2.prog);

        const double reduction =
            100.0 * (1.0 - double(r1.instrs()) / double(rInit.instrs()));
        t.row({name,
               fmtK(double(rInit.instrs())) + " -> " +
                   fmtK(double(r1.instrs())),
               "-" + fmt(reduction, 1) + "%", fmt(sInit.ipc()),
               fmt(s1.ipc()) + " / " + fmt(s2.ipc()),
               fmt(rInit.compileSeconds + r1.compileSeconds +
                       r2.compileSeconds,
                   1)});
    }
    t.print();
    std::printf("\nPaper anchors: reductions of 8.5-16.4%%; IPC "
                "0.19-0.22 -> 0.87-0.97; compile times of seconds to "
                "under a minute.\n");
    return 0;
}
