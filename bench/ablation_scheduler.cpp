/**
 * @file
 * Ablation study of the scheduler's design choices (supporting
 * Sec. 3.5): issue-slot affinity (beta sweep and off), write-back FIFO
 * depth, and register-bank count under VLIW issue. Quantifies how much
 * each mechanism contributes to the headline IPC of Table 7.
 */
#include "bench_common.h"
#include "dse/explorer.h"

using namespace finesse;

int
main()
{
    banner("Ablation: scheduler mechanisms (BN254N)");
    Explorer ex("BN254N");
    const Module m = ex.framework().handle().trace(
        VariantConfig{}, TracePart::Full, true, nullptr);

    // ---- affinity parameter beta (single issue) -----------------------
    {
        TextTable t;
        t.header({"beta", "cycles", "IPC", "bubbles"});
        for (double beta : {-1.0, 0.0, 0.02, 0.05, 0.10, 0.20, 1.0}) {
            PipelineModel hw;
            hw.beta = beta;
            const CompileResult res = runBackend(m, hw, true);
            const CycleStats sim = simulateCycles(res.prog);
            std::string label = fmt(beta, 2);
            if (beta <= -1.0)
                label += " (always Short-affine)";
            if (beta >= 1.0)
                label += " (always Long-affine)";
            t.row({label, fmtK(double(sim.totalCycles)),
                   fmt(sim.ipc()), fmtK(double(sim.bubbles))});
        }
        std::printf("Issue-slot affinity parameter beta:\n");
        t.print();
    }

    // ---- write-back FIFO depth (single issue, no FIFO = depth 0) ------
    {
        TextTable t;
        t.header({"FIFO depth", "cycles", "IPC", "max defer"});
        for (int depth : {0, 1, 2, 4, 8, 16}) {
            PipelineModel hw;
            hw.writebackFifo = depth > 0;
            hw.fifoDepth = depth;
            const CompileResult res = runBackend(m, hw, true);
            const CycleStats sim = simulateCycles(res.prog);
            t.row({depth == 0 ? "none (HW1)" : std::to_string(depth),
                   fmtK(double(sim.totalCycles)), fmt(sim.ipc()),
                   std::to_string(sim.maxFifoDefer)});
        }
        std::printf("\nWrite-back ring buffer (Table 7's HW1/HW2 axis):\n");
        t.print();
    }

    // ---- bank count under 3-wide VLIW (Sec. 5 future-work axis) -------
    {
        TextTable t;
        t.header({"banks", "cycles", "IPC", "max regs/bank"});
        for (int banks : {3, 4, 6, 8}) {
            PipelineModel hw;
            hw.issueWidth = 3;
            hw.numLinUnits = 2;
            hw.numBanks = banks;
            hw.writebackFifo = true;
            const CompileResult res = runBackend(m, hw, true);
            const CycleStats sim = simulateCycles(res.prog);
            t.row({std::to_string(banks),
                   fmtK(double(sim.totalCycles)), fmt(sim.ipc()),
                   std::to_string(res.prog.regs.maxRegs())});
        }
        std::printf("\nRegister-bank partitioning under 3-wide VLIW:\n");
        t.print();
    }

    // ---- cyclotomic squaring in the final exponentiation ---------------
    {
        TextTable t;
        t.header({"final-exp sqr", "instrs", "Long instrs", "cycles"});
        for (bool cyclo : {false, true}) {
            VariantConfig vc;
            vc.cyclotomicSqr = cyclo;
            CompileOptions opt;
            opt.variants = vc;
            const DsePoint p = ex.evaluate(opt, 1, "cyclo");
            t.row({cyclo ? "Granger-Scott" : "generic",
                   fmtK(double(p.instrs)), fmtK(double(p.mulInstrs)),
                   fmtK(double(p.cycles))});
        }
        std::printf("\nCyclotomic-subgroup squaring (Sec. 2.1's "
                    "\"cyclotomic subfield optimized\"):\n");
        t.print();
    }

    // ---- Miller / final-exponentiation split (Sec. 2.1's 40/60) -------
    {
        const Module miller = ex.framework().handle().trace(
            VariantConfig{}, TracePart::MillerOnly, true, nullptr);
        const Module fexp = ex.framework().handle().trace(
            VariantConfig{}, TracePart::FinalExpOnly, true, nullptr);
        PipelineModel hw;
        const i64 cm =
            simulateCycles(runBackend(miller, hw, true).prog).totalCycles;
        const i64 cf =
            simulateCycles(runBackend(fexp, hw, true).prog).totalCycles;
        std::printf("\nCost split (BN254N): Miller loop %.0f%%, final "
                    "exponentiation %.0f%% (paper: ~40%% / ~60%%)\n",
                    100.0 * double(cm) / double(cm + cf),
                    100.0 * double(cf) / double(cm + cf));
    }
    return 0;
}
