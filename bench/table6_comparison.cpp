/**
 * @file
 * Table 6 reproduction: BN254/BN256 accelerator comparison against the
 * flexible FPGA framework (FlexiPair [17]) and the fixed-function ASIC
 * (Ikeda et al. [10]). Baseline rows are the published numbers
 * (recorded constants); our rows are produced by the full Finesse
 * flow: compile -> cycle simulation -> area/timing models -> FPGA
 * mapping / 65 nm technology scaling.
 */
#include "bench_common.h"
#include "dse/explorer.h"

using namespace finesse;

int
main()
{
    banner("Table 6: comparison on BN254/BN256 (optimal Ate)");
    Framework fw("BN254N");
    const int bits = fw.info().logP();
    const CompileResult res = fw.compile(CompileOptions{});
    const CycleStats sim = simulateCycles(res.prog);
    const double cycles = static_cast<double>(sim.totalCycles);

    TimingModel timing;
    const double asicMHz = timing.frequencyMHz(bits, 38);
    const double fpgaMHz = FpgaModel::frequencyMHz(bits, 38);

    TextTable t;
    t.header({"Work", "Platform", "Freq(MHz)", "#Cycle", "Latency",
              "Util./Area", "Thpt(ops)", "Thpt/Area"});

    // Published baselines (recorded from Table 6 of the paper).
    t.row({"FlexiPair[17]", "FPGA Virtex-7", "188.5", "2552k", "14.14ms",
           "2506 Slices", "70.7", "0.028 ops/Slice"});

    {
        const AreaReport a1 = fw.area(res, 1);
        const double slices = FpgaModel::slices(a1);
        const double latMs = cycles / fpgaMHz / 1e3;
        const double ops = fpgaMHz * 1e6 / cycles;
        t.row({"Ours (1-core)", "FPGA Virtex-7", fmt(fpgaMHz, 1),
               fmtK(cycles), fmt(latMs, 3) + "ms",
               fmt(slices, 0) + " Slices", fmt(ops, 0),
               fmt(ops / slices, 3) + " ops/Slice"});
    }

    t.row({"Ikeda[10]", "ASIC 65nm FDSOI", "250", "14050", "56.2us",
           "12.8 mm^2", "17.8k", "1.39 kops/mm^2"});

    const AreaReport a1 = fw.area(res, 1);
    const AreaReport a8 = fw.area(res, 8);
    auto asicRow = [&](const char *name, const AreaReport &ar, int cores,
                       bool scaleTo65) {
        double mhz = asicMHz;
        double area = ar.totalArea;
        if (scaleTo65) {
            mhz = TechScale::scaleFreq(mhz, TechNode::N40LP,
                                       TechNode::N65);
            area = TechScale::scaleArea(area, TechNode::N40LP,
                                        TechNode::N65);
        }
        const double latUs = cycles / mhz;
        const double kops = cores * mhz * 1e3 / cycles;
        t.row({name, scaleTo65 ? "ASIC 65nm (equiv.)" : "ASIC 40nm LP",
               fmt(mhz, 0), fmtK(cycles), fmt(latUs, 1) + "us",
               fmt(area, 2) + " mm^2", fmt(kops, 1) + "k",
               fmt(kops / area, 2) + " kops/mm^2"});
    };
    asicRow("Ours (1-core)", a1, 1, false);
    asicRow("Ours (8-core)", a8, 8, false);
    asicRow("Ours (8-core)", a8, 8, true);
    t.print();

    // Headline ratios (paper: 34x / 6.2x vs FlexiPair; 3x / 3.2x vs
    // the fixed ASIC at 65nm-equivalent).
    const double oursFpgaOps = fpgaMHz * 1e6 / cycles;
    const double oursFpgaEff = oursFpgaOps / FpgaModel::slices(a1);
    const double mhz65 =
        TechScale::scaleFreq(asicMHz, TechNode::N40LP, TechNode::N65);
    const double area65 =
        TechScale::scaleArea(a8.totalArea, TechNode::N40LP, TechNode::N65);
    const double ours65kops = 8 * mhz65 * 1e3 / cycles;
    std::printf("\nHeadline ratios (ours vs baselines):\n");
    std::printf("  vs FlexiPair:  throughput %.1fx, ops/slice %.1fx\n",
                oursFpgaOps / 70.7, oursFpgaEff / 0.028);
    std::printf("  vs Ikeda ASIC: throughput %.1fx, kops/mm^2 %.1fx "
                "(65nm equiv.)\n",
                ours65kops / 17.8, (ours65kops / area65) / 1.39);
    return 0;
}
