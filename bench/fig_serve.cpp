/**
 * @file
 * Batched-serving throughput figure: random-linear-combination batch
 * verification (serve/verify.h) versus one-at-a-time single
 * verification, at batch size 16, across the three request kinds the
 * serving engine accepts (BLS signatures, KZG openings, Groth16-style
 * proofs).
 *
 * Why batching wins: a batch is ONE pairing product — one Miller
 * schedule over the merged terms and one final exponentiation —
 * instead of N products. With G2-base merging the Miller-loop count
 * itself collapses: N BLS checks cost N+1 loops (not 2N), N KZG
 * openings against one SRS cost 2 (not 2N), N Groth16 proofs under
 * one vk cost N+3 (not 4N).
 *
 * Identity gate: every batched verdict is differential-checked
 * against per-request single verification (clean streams AND a dirty
 * stream with corrupted requests that the bisection fallback must
 *isolate). Any mismatch — or a best batched speedup below the 2x
 * acceptance bar — exits non-zero, so CI fails on correctness, not
 * just on trend (tools/bench_check.py gates the `speedup` field
 * against bench/baselines/BENCH_serve.json).
 *
 * FINESSE_FAST=1 restricts to BN254N; the full run adds BLS12-381.
 */
#include <chrono>

#include "bench_common.h"
#include "serve/engine.h"
#include "serve/workload.h"

using namespace finesse;

namespace {

constexpr int kBatch = 16;
constexpr int kRequests = 32; // per kind, per curve

double
seconds(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

struct KindResult
{
    double singleSeconds = 0;
    double batchedSeconds = 0;
    size_t singlePairings = 0;
    size_t batchedPairings = 0;
    int mismatches = 0;

    double
    speedup() const
    {
        return batchedSeconds > 0 ? singleSeconds / batchedSeconds : 0;
    }
};

/** Clean stream: time N singles vs ceil(N/16) RLC batches. */
KindResult
runKind(const CurveSystem12 &sys, WorkloadFactory &factory,
        RequestKind kind)
{
    std::vector<PairingCheck> checks;
    for (int i = 0; i < kRequests; ++i)
        checks.push_back(
            reduceToCheck(sys, factory.make(kind, false)));

    KindResult res;

    BatchVerifyStats singleStats;
    std::vector<bool> singles;
    auto t0 = std::chrono::steady_clock::now();
    for (const PairingCheck &c : checks)
        singles.push_back(verifySingle(sys, c, &singleStats));
    res.singleSeconds = seconds(t0);
    res.singlePairings = singleStats.pairings;

    BatchVerifyStats batchStats;
    std::vector<bool> batched;
    t0 = std::chrono::steady_clock::now();
    for (size_t from = 0; from < checks.size(); from += kBatch) {
        const std::vector<PairingCheck> chunk(
            checks.begin() + from,
            checks.begin() +
                std::min(checks.size(), from + kBatch));
        const auto verdicts =
            verifyBatch(sys, chunk, 0x5e55e + from, &batchStats);
        batched.insert(batched.end(), verdicts.begin(), verdicts.end());
    }
    res.batchedSeconds = seconds(t0);
    res.batchedPairings = batchStats.pairings;

    for (int i = 0; i < kRequests; ++i) {
        // Clean stream: everything must accept, both ways.
        if (!singles[i] || !batched[i])
            res.mismatches++;
    }
    return res;
}

/** Dirty stream: corrupted requests must be isolated, not mask. */
int
runDirtyIdentity(const CurveSystem12 &sys, WorkloadFactory &factory)
{
    int mismatches = 0;
    for (const RequestKind kind :
         {RequestKind::Bls, RequestKind::Kzg, RequestKind::Zk}) {
        std::vector<PairingCheck> checks;
        std::vector<bool> expected;
        for (int i = 0; i < kBatch; ++i) {
            const bool bad = i == 4 || i == 11;
            checks.push_back(
                reduceToCheck(sys, factory.make(kind, bad)));
            expected.push_back(!bad);
        }
        const auto batched = verifyBatch(sys, checks, 99);
        for (int i = 0; i < kBatch; ++i) {
            const bool single = verifySingle(sys, checks[i]);
            if (batched[i] != expected[i] || single != expected[i])
                mismatches++;
        }
    }
    return mismatches;
}

} // namespace

int
main()
{
    banner("fig_serve: batched verification throughput (batch 16)");

    std::vector<std::string> curves = {"BN254N"};
    if (!fastMode())
        curves.push_back("BLS12-381");

    BenchJson json;
    json.str("bench", "fig_serve")
        .str("mode", fastMode() ? "fast" : "full")
        .count("curves", curves.size())
        .count("batch", kBatch)
        .count("requests_per_kind", kRequests);

    TextTable table;
    table.header({"curve", "kind", "single s", "batched s", "speedup",
                  "miller single", "miller batched"});

    int mismatches = 0;
    // Gate metric: the mixed-stream aggregate per curve (the serving
    // workload is all three kinds); per-kind ratios are advisory.
    double gateSpeedup = 0;
    for (const std::string &curve : curves) {
        const auto &sys = curveSystem12(curve);
        WorkloadFactory factory(sys, 0xf15); // one setup per curve
        double curveSingle = 0, curveBatched = 0;
        for (const RequestKind kind :
             {RequestKind::Bls, RequestKind::Kzg, RequestKind::Zk}) {
            const KindResult res = runKind(sys, factory, kind);
            mismatches += res.mismatches;
            curveSingle += res.singleSeconds;
            curveBatched += res.batchedSeconds;
            table.row({curve, toString(kind), fmt(res.singleSeconds, 3),
                       fmt(res.batchedSeconds, 3),
                       fmt(res.speedup(), 2) + "x",
                       std::to_string(res.singlePairings),
                       std::to_string(res.batchedPairings)});
            const std::string prefix =
                curve + "_" + toString(kind) + "_";
            json.num(prefix + "single_seconds", res.singleSeconds)
                .num(prefix + "batched_seconds", res.batchedSeconds)
                .num(prefix + "speedup", res.speedup())
                .count(prefix + "miller_single", res.singlePairings)
                .count(prefix + "miller_batched", res.batchedPairings);
        }
        const double curveSpeedup =
            curveBatched > 0 ? curveSingle / curveBatched : 0;
        gateSpeedup = std::max(gateSpeedup, curveSpeedup);
        table.row({curve, "ALL", fmt(curveSingle, 3),
                   fmt(curveBatched, 3), fmt(curveSpeedup, 2) + "x", "",
                   ""});
        json.num(curve + "_mixed_speedup", curveSpeedup);
        mismatches += runDirtyIdentity(sys, factory);
    }
    table.print();

    // Served-throughput leg: the same requests through the actual
    // engine (queue + lanes + linger), advisory numbers.
    {
        const auto &sys = curveSystem12(curves[0]);
        WorkloadFactory factory(sys, 0xfee);
        ServeOptions opt;
        opt.batchSize = kBatch;
        const auto t0 = std::chrono::steady_clock::now();
        ServeEngine engine(sys, opt);
        std::vector<std::future<Verdict>> futures;
        for (int i = 0; i < kRequests; ++i)
            futures.push_back(
                engine.submit(factory.make(RequestKind::Bls, false))
                    .verdict);
        for (auto &f : futures)
            if (f.get() != Verdict::Accept)
                mismatches++;
        engine.drain();
        const double served = seconds(t0);
        const ServeCounters c = engine.counters();
        std::printf("\nserved %zu requests in %.3f s (%.1f rps, "
                    "%zu batches, avg latency %.2f ms)\n",
                    c.completed, served, double(c.completed) / served,
                    c.batches, c.avgLatencyMs());
        json.num("serve_rps", double(c.completed) / served)
            .count("serve_batches", c.batches)
            .num("serve_avg_latency_ms", c.avgLatencyMs());
    }

    json.num("speedup", gateSpeedup).count(
        "identity_mismatches", static_cast<size_t>(mismatches));
    json.write("BENCH_serve.json");

    std::printf("\nmixed-stream batched speedup at batch %d: %.2fx "
                "(acceptance bar 2x); identity mismatches: %d\n",
                kBatch, gateSpeedup, mismatches);
    if (mismatches > 0) {
        std::fprintf(stderr, "FAIL: batched verdicts diverged\n");
        return 1;
    }
    if (gateSpeedup < 2.0) {
        std::fprintf(stderr, "FAIL: batched speedup below 2x\n");
        return 1;
    }
    return 0;
}
