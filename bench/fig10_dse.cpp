/**
 * @file
 * Figure 10 reproduction: design-space search over operator-variant
 * combinations and representative pipeline configurations (BLS24-509).
 * Rows: Manual (single-issue heuristic), All-Schoolbook, All-Karatsuba,
 * Optimal (exhaustive search over the multiplication-variant space).
 * Columns: the five pipeline configurations of the paper.
 *
 * The sweep is embarrassingly parallel -- every (variants, pipeline)
 * cell is an independent compile + simulate + area evaluation -- so it
 * runs twice through Explorer::evaluateAll: once serial (--jobs 1) and
 * once on all hardware threads. Both sweeps must produce identical
 * cycle counts (the determinism contract of the parallel engine); the
 * wall-clock ratio and the trace-cache miss/hit/coalesce counters are
 * reported and written to BENCH_dse.json for trend tracking.
 *
 * Front-end traces are hardware-independent, so the grouped sweep
 * engine traces each variant combination exactly once through the
 * process-wide sharded trace cache (concurrent requests for the same
 * combination coalesce onto a single trace) and then runs batched
 * backend-only evaluation -- shared TracePrep, per-worker scratch --
 * for every additional pipeline model.
 */
#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "bench_common.h"
#include "dse/distributor.h"
#include "dse/explorer.h"
#include "support/diskcache.h"
#include "support/threadpool.h"

using namespace finesse;

namespace {

double
wallSeconds(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    // This bench is its own distributed-sweep worker pool: the master
    // re-executes the binary as `<self> dse-worker` for each worker.
    if (const std::optional<int> rc = maybeRunDseWorkerMain(argc, argv))
        return *rc;

    banner("Figure 10: DSE over variants x pipeline configs");
    // Every leg up to the warm distributed ones must be cache-cold
    // and deterministic regardless of the ambient environment.
    unsetenv(kArtifactCacheEnv);
    configureArtifactCache("");
    const char *curve = fastMode() ? "BN254N" : "BLS24-509";
    Explorer ex(curve);
    std::printf("curve: %s (cycle counts, x1000)\n\n", curve);

    const std::vector<PipelineModel> models = fig10HardwareModels();

    struct Row
    {
        std::string name;
        VariantConfig cfg;
    };
    const std::vector<Row> rows = {
        {"Manual", ex.manualHeuristic()},
        {"All sch.", ex.allSchoolbook()},
        {"All karat.", ex.allKaratsuba()},
    };
    const auto space = ex.variantSpace(true);

    // One flat request list: the three preset rows plus the full
    // mul-variant space for the "Optimal" search, each against every
    // pipeline model. Ordered model-major (all variant combos for
    // model 0, then model 1, ...) so ADJACENT requests carry DISTINCT
    // trace keys: the workers' dynamic schedule then traces different
    // keys concurrently instead of piling onto one in-flight trace.
    std::vector<VariantConfig> cfgs;
    for (const Row &row : rows)
        cfgs.push_back(row.cfg);
    cfgs.insert(cfgs.end(), space.begin(), space.end());

    std::vector<DseRequest> reqs;
    for (const PipelineModel &hw : models) {
        for (size_t c = 0; c < cfgs.size(); ++c) {
            DseRequest req;
            req.opt.variants = cfgs[c];
            req.opt.hw = hw;
            req.label = c < rows.size() ? rows[c].name : "probe";
            reqs.push_back(std::move(req));
        }
    }

    // Serial reference sweep, then the parallel sweep on all hardware
    // threads. Both start from a cold cache so the trace work is
    // comparable; the parallel pass exercises shard contention and
    // in-flight coalescing (models.size() workers can race for the
    // same variant trace).
    clearTraceCache();
    const auto t1 = std::chrono::steady_clock::now();
    const std::vector<DsePoint> serial = ex.evaluateAll(reqs, 1);
    const double serialSeconds = wallSeconds(t1);
    const TraceCacheStats serialCache = traceCacheStats();

    // Front-end / backend wall-time split: re-run the serial sweep
    // with the trace cache warm -- that pass is backend-only, so the
    // difference against the cold sweep is the front-end (CodeGen +
    // IROpt) share. Tracks where sweep time goes across PRs.
    const auto tWarm = std::chrono::steady_clock::now();
    const std::vector<DsePoint> warm = ex.evaluateAll(reqs, 1);
    const double backendSerialSeconds = wallSeconds(tWarm);
    const double frontendSerialSeconds =
        std::max(serialSeconds - backendSerialSeconds, 0.0);
    size_t warmMismatches = 0;
    for (size_t i = 0; i < warm.size(); ++i)
        warmMismatches += warm[i].cycles != serial[i].cycles;

    const int jobs = resolveJobs(0);
    clearTraceCache();
    const auto t2 = std::chrono::steady_clock::now();
    const std::vector<DsePoint> points = ex.evaluateAll(reqs, jobs);
    const double parallelSeconds = wallSeconds(t2);
    const TraceCacheStats cache = traceCacheStats();

    // Distributed legs: the same sweep fanned out over worker
    // subprocesses (multi-process engine, dse/distributor.h), once
    // per transport -- pipe fds and loopback TCP sockets -- so the
    // socket layer's cost shows up as a separate trend line. Worker
    // processes trace from their own cold caches, so each leg
    // measures the full remote cost: wire round trip + per-worker
    // front end + batched backend. Must be bit-identical like every
    // other leg.
    const int dseWorkers = 2;
    struct DistLeg
    {
        const char *name;
        DseTransport transport;
        double seconds = 0;
        size_t mismatches = 0;
        DistributorStats stats;
    };
    std::vector<DistLeg> distLegs = {
        {"pipe", DseTransport::Pipe, 0, 0, {}},
        {"loopback_tcp", DseTransport::LoopbackTcp, 0, 0, {}},
    };
    auto runDistLeg = [&](DistLeg &leg) {
        DistributorOptions dopts;
        dopts.stats = &leg.stats;
        dopts.transport = leg.transport;
        const auto t3 = std::chrono::steady_clock::now();
        const std::vector<DsePoint> dist =
            ex.evaluateAllDistributed(reqs, dseWorkers, dopts);
        leg.seconds = wallSeconds(t3);
        for (size_t i = 0; i < dist.size(); ++i) {
            if (dist[i].cycles != serial[i].cycles ||
                dist[i].instrs != serial[i].instrs ||
                dist[i].ipc != serial[i].ipc ||
                dist[i].areaMm2 != serial[i].areaMm2)
                ++leg.mismatches;
        }
    };
    for (DistLeg &leg : distLegs)
        runDistLeg(leg);

    // Warm distributed legs: prime the persistent artifact cache with
    // every front-end trace from the master process, export the cache
    // dir so the spawned workers inherit it, and re-run both
    // transports. Each worker then loads every trace from disk
    // instead of re-tracing it, isolating the spawn + handshake +
    // wire + backend remainder -- the cold legs above keep the legacy
    // trend line, whose sub-1x "speedup" is dominated by per-worker
    // front-end duplication, and the cold/warm split shows what the
    // persistent cache recovers. Results must stay bit-identical.
    const std::string artifactDir = "fig10_artifact_cache";
    setenv(kArtifactCacheEnv, artifactDir.c_str(), 1);
    configureArtifactCache(artifactDir);
    clearTraceCache();
    for (const VariantConfig &cfg : cfgs) {
        CompileOptions opt;
        opt.variants = cfg;
        OptStats stats;
        (void)ex.framework().traceShared(opt, stats); // writes artifact
    }
    std::vector<DistLeg> warmLegs = {
        {"pipe_warm", DseTransport::Pipe, 0, 0, {}},
        {"loopback_tcp_warm", DseTransport::LoopbackTcp, 0, 0, {}},
    };
    for (DistLeg &leg : warmLegs)
        runDistLeg(leg);
    unsetenv(kArtifactCacheEnv);
    configureArtifactCache("");
    distLegs.insert(distLegs.end(), warmLegs.begin(), warmLegs.end());

    // Determinism contract: the parallel and distributed sweeps are
    // bit-identical to the serial one. Counted per leg (parallel /
    // warm / per-transport distributed) so an identity failure in CI
    // names the engine that diverged.
    size_t parallelMismatches = 0;
    for (size_t i = 0; i < points.size(); ++i) {
        if (points[i].cycles != serial[i].cycles ||
            points[i].instrs != serial[i].instrs)
            ++parallelMismatches;
    }
    size_t distributedMismatches = 0;
    for (const DistLeg &leg : distLegs)
        distributedMismatches += leg.mismatches;
    const size_t mismatches = parallelMismatches + distributedMismatches;

    TextTable t;
    std::vector<std::string> header = {"Variant combo"};
    for (const PipelineModel &m : models)
        header.push_back(m.describe());
    t.header(header);

    auto cell = [&](size_t cfgIdx, size_t model) -> const DsePoint & {
        return points[model * cfgs.size() + cfgIdx];
    };
    for (size_t r = 0; r < rows.size(); ++r) {
        std::vector<std::string> cells = {rows[r].name};
        for (size_t m = 0; m < models.size(); ++m)
            cells.push_back(fmt(double(cell(r, m).cycles) / 1e3, 1));
        t.row(cells);
    }

    // Optimal: exhaustive over the mul-variant space per hw model
    // (index-ordered scan => same winner as the serial sweep).
    std::vector<std::string> optCells = {"Optimal"};
    std::vector<std::string> optWhich = {"(combo)"};
    for (size_t m = 0; m < models.size(); ++m) {
        i64 best = -1;
        size_t bestIdx = 0;
        for (size_t i = 0; i < space.size(); ++i) {
            const DsePoint &p = cell(rows.size() + i, m);
            if (best < 0 || p.cycles < best) {
                best = p.cycles;
                bestIdx = i;
            }
        }
        optCells.push_back(fmt(double(best) / 1e3, 1));
        std::string which;
        for (int d : ex.towerDegrees()) {
            which += space[bestIdx].level(d).mul == MulVariant::Karatsuba
                         ? "K"
                         : "S";
        }
        optWhich.push_back(which);
    }
    t.row(optCells);
    t.row(optWhich);
    t.print();

    const double speedup =
        parallelSeconds > 0 ? serialSeconds / parallelSeconds : 0.0;
    std::printf(
        "\n(combo) row: chosen mul variant per tower level, lowest "
        "degree first (K = Karatsuba, S = Schoolbook).\n"
        "Shape checks (paper): Manual beats All-karat. on the "
        "single-issue models and is near optimal; with more linear "
        "units All-karat. becomes viable again.\n"
        "Trace cache: %zu front-end traces, %zu warm lookups, %zu "
        "coalesced waits (grouped engine: one lookup per trace key, "
        "batched backend for all %zu points).\n"
        "Sweep: %zu points | serial %.2f s (front end %.2f s + "
        "backend %.2f s) | parallel %.2f s on %d workers | speedup "
        "%.2fx | %zu parallel + %zu warm mismatches\n",
        cache.misses, cache.hits, cache.coalesced, points.size(),
        points.size(), serialSeconds, frontendSerialSeconds,
        backendSerialSeconds, parallelSeconds, jobs, speedup,
        parallelMismatches, warmMismatches);
    for (const DistLeg &leg : distLegs) {
        std::printf(
            "Distributed (%s): %.2f s on %d worker processes (%zu "
            "groups, %d spawned, %d deaths, %d net faults) | speedup "
            "%.2fx vs serial | %zu mismatches\n",
            leg.name, leg.seconds, dseWorkers, leg.stats.groups,
            leg.stats.workersSpawned, leg.stats.workerDeaths,
            leg.stats.networkFaultsInjected,
            leg.seconds > 0 ? serialSeconds / leg.seconds : 0.0,
            leg.mismatches);
    }

    BenchJson json;
    json.str("bench", "fig10_dse")
        .str("curve", curve)
        .count("points", points.size())
        .count("jobs", static_cast<size_t>(jobs))
        .num("serial_seconds", serialSeconds)
        .num("frontend_serial_seconds", frontendSerialSeconds)
        .num("backend_serial_seconds", backendSerialSeconds)
        .num("parallel_seconds", parallelSeconds)
        .num("speedup", speedup)
        .count("dse_workers", static_cast<size_t>(dseWorkers));
    // Legacy aggregate keys (pipe leg) so existing trend lines keep
    // their history, then one block per transport. The fault-tolerance
    // counters are informational, not gated: all zero on a healthy
    // run, non-zero under an ambient FINESSE_DSE_FAULT plan or a
    // loaded machine -- trend tracking only.
    const DistLeg &pipeLeg = distLegs[0];
    json.num("distributed_seconds", pipeLeg.seconds)
        .num("distributed_speedup",
             pipeLeg.seconds > 0 ? serialSeconds / pipeLeg.seconds
                                 : 0.0)
        .count("distributed_groups", pipeLeg.stats.groups)
        .count("distributed_worker_deaths",
               static_cast<size_t>(pipeLeg.stats.workerDeaths));
    for (const DistLeg &leg : distLegs) {
        const std::string p = std::string("distributed_") + leg.name;
        const DistributorStats &s = leg.stats;
        json.num(p + "_seconds", leg.seconds)
            .num(p + "_speedup",
                 leg.seconds > 0 ? serialSeconds / leg.seconds : 0.0)
            .count(p + "_worker_deaths",
                   static_cast<size_t>(s.workerDeaths))
            .count(p + "_redispatches",
                   static_cast<size_t>(s.redispatches))
            .count(p + "_timeout_kills",
                   static_cast<size_t>(s.timeoutKills))
            .count(p + "_respawns", static_cast<size_t>(s.respawns))
            .count(p + "_hedges", static_cast<size_t>(s.hedges))
            .count(p + "_handshake_failures",
                   static_cast<size_t>(s.handshakeFailures))
            .count(p + "_fallback_groups",
                   static_cast<size_t>(s.fallbackGroups))
            .count(p + "_remote_connects",
                   static_cast<size_t>(s.remoteConnects))
            .count(p + "_remote_connect_failures",
                   static_cast<size_t>(s.remoteConnectFailures))
            .count(p + "_host_quarantines",
                   static_cast<size_t>(s.hostQuarantines))
            .count(p + "_net_faults",
                   static_cast<size_t>(s.networkFaultsInjected))
            .count(p + "_mismatches", leg.mismatches);
    }
    json.count("parallel_mismatches", parallelMismatches)
        .count("warm_mismatches", warmMismatches)
        .count("distributed_mismatches", distributedMismatches)
        .count("trace_misses", cache.misses)
        .count("trace_hits", cache.hits)
        .count("trace_coalesced", cache.coalesced)
        .count("serial_trace_misses", serialCache.misses)
        .count("determinism_mismatches", mismatches + warmMismatches);
    json.write("BENCH_dse.json");

    return mismatches + warmMismatches == 0 ? 0 : 1;
}
