/**
 * @file
 * Figure 10 reproduction: design-space search over operator-variant
 * combinations and representative pipeline configurations (BLS24-509).
 * Rows: Manual (single-issue heuristic), All-Schoolbook, All-Karatsuba,
 * Optimal (exhaustive search over the multiplication-variant space).
 * Columns: the five pipeline configurations of the paper.
 *
 * Front-end traces are hardware-independent, so every (variants,
 * pipeline) cell compiles through the process-wide trace cache: one
 * CodeGen + IROpt run per variant combination, backend-only
 * recompilation for every additional pipeline model.
 */
#include "bench_common.h"
#include "dse/explorer.h"

using namespace finesse;

int
main()
{
    banner("Figure 10: DSE over variants x pipeline configs");
    const char *curve = fastMode() ? "BN254N" : "BLS24-509";
    Explorer ex(curve);
    std::printf("curve: %s (cycle counts, x1000)\n\n", curve);

    clearTraceCache();
    const std::vector<PipelineModel> models = fig10HardwareModels();

    auto evalPoint = [&](const VariantConfig &cfg, const PipelineModel &hw,
                         const std::string &label) {
        CompileOptions opt;
        opt.variants = cfg;
        opt.hw = hw;
        return ex.evaluate(opt, 1, label);
    };

    struct Row
    {
        std::string name;
        VariantConfig cfg;
    };
    const std::vector<Row> rows = {
        {"Manual", ex.manualHeuristic()},
        {"All sch.", ex.allSchoolbook()},
        {"All karat.", ex.allKaratsuba()},
    };

    TextTable t;
    std::vector<std::string> header = {"Variant combo"};
    for (const PipelineModel &m : models)
        header.push_back(m.describe());
    t.header(header);

    for (const Row &row : rows) {
        std::vector<std::string> cells = {row.name};
        for (const PipelineModel &hw : models) {
            const DsePoint p = evalPoint(row.cfg, hw, row.name);
            cells.push_back(fmt(double(p.cycles) / 1e3, 1));
        }
        t.row(cells);
    }

    // Optimal: exhaustive over the mul-variant space per hw model.
    const auto space = ex.variantSpace(true);
    std::vector<std::string> optCells = {"Optimal"};
    std::vector<std::string> optWhich = {"(combo)"};
    for (const PipelineModel &hw : models) {
        i64 best = -1;
        size_t bestIdx = 0;
        for (size_t i = 0; i < space.size(); ++i) {
            const DsePoint p = evalPoint(space[i], hw, "probe");
            if (best < 0 || p.cycles < best) {
                best = p.cycles;
                bestIdx = i;
            }
        }
        optCells.push_back(fmt(double(best) / 1e3, 1));
        std::string which;
        for (int d : ex.towerDegrees()) {
            which += space[bestIdx].level(d).mul == MulVariant::Karatsuba
                         ? "K"
                         : "S";
        }
        optWhich.push_back(which);
    }
    t.row(optCells);
    t.row(optWhich);
    t.print();

    const TraceCacheStats cache = traceCacheStats();
    std::printf(
        "\n(combo) row: chosen mul variant per tower level, lowest "
        "degree first (K = Karatsuba, S = Schoolbook).\n"
        "Shape checks (paper): Manual beats All-karat. on the "
        "single-issue models and is near optimal; with more linear "
        "units All-karat. becomes viable again.\n"
        "Trace cache: %zu front-end traces, %zu backend-only reuses "
        "(%zu compilations total).\n",
        cache.misses, cache.hits, cache.misses + cache.hits);
    return 0;
}
