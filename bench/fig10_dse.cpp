/**
 * @file
 * Figure 10 reproduction: design-space search over operator-variant
 * combinations and representative pipeline configurations (BLS24-509).
 * Rows: Manual (single-issue heuristic), All-Schoolbook, All-Karatsuba,
 * Optimal (exhaustive search over the multiplication-variant space).
 * Columns: the five pipeline configurations of the paper.
 */
#include <map>

#include "bench_common.h"
#include "dse/explorer.h"

using namespace finesse;

int
main()
{
    banner("Figure 10: DSE over variants x pipeline configs");
    const char *curve = fastMode() ? "BN254N" : "BLS24-509";
    Explorer ex(curve);
    std::printf("curve: %s (cycle counts, x1000)\n\n", curve);

    const std::vector<PipelineModel> models = fig10HardwareModels();

    struct Row
    {
        std::string name;
        VariantConfig cfg;
    };
    const std::vector<Row> rows = {
        {"Manual", ex.manualHeuristic()},
        {"All sch.", ex.allSchoolbook()},
        {"All karat.", ex.allKaratsuba()},
    };

    // Front-end traces are hardware-independent: trace once per
    // variant combination, re-run the backend per pipeline model.
    std::map<std::string, Module> traceCache;
    auto traceFor = [&](const VariantConfig &cfg, const std::string &key) {
        auto it = traceCache.find(key);
        if (it == traceCache.end()) {
            it = traceCache
                     .emplace(key, ex.framework().handle().trace(
                                       cfg, TracePart::Full, true,
                                       nullptr))
                     .first;
        }
        return &it->second;
    };

    TextTable t;
    std::vector<std::string> header = {"Variant combo"};
    for (const PipelineModel &m : models)
        header.push_back(m.describe());
    t.header(header);

    for (const Row &row : rows) {
        std::vector<std::string> cells = {row.name};
        const Module *m = traceFor(row.cfg, row.name);
        for (const PipelineModel &hw : models) {
            const DsePoint p = ex.evaluateModule(*m, hw, 1, row.name);
            cells.push_back(fmt(double(p.cycles) / 1e3, 1));
        }
        t.row(cells);
    }

    // Optimal: exhaustive over the mul-variant space per hw model.
    const auto space = ex.variantSpace(true);
    std::vector<std::string> optCells = {"Optimal"};
    std::vector<std::string> optWhich = {"(combo)"};
    int comboIdx = 0;
    std::map<std::string, const Module *> spaceTraces;
    std::vector<const Module *> spaceModules;
    for (const VariantConfig &cfg : space) {
        spaceModules.push_back(
            traceFor(cfg, "combo" + std::to_string(comboIdx++)));
    }
    for (const PipelineModel &hw : models) {
        i64 best = -1;
        size_t bestIdx = 0;
        for (size_t i = 0; i < space.size(); ++i) {
            const DsePoint p =
                ex.evaluateModule(*spaceModules[i], hw, 1, "probe");
            if (best < 0 || p.cycles < best) {
                best = p.cycles;
                bestIdx = i;
            }
        }
        optCells.push_back(fmt(double(best) / 1e3, 1));
        std::string which;
        for (int d : ex.towerDegrees()) {
            which += space[bestIdx].level(d).mul == MulVariant::Karatsuba
                         ? "K"
                         : "S";
        }
        optWhich.push_back(which);
    }
    t.row(optCells);
    t.row(optWhich);
    t.print();
    std::printf(
        "\n(combo) row: chosen mul variant per tower level, lowest "
        "degree first (K = Karatsuba, S = Schoolbook).\n"
        "Shape checks (paper): Manual beats All-karat. on the "
        "single-issue models and is near optimal; with more linear "
        "units All-karat. becomes viable again.\n");
    return 0;
}
