/**
 * @file
 * Front-end optimizer benchmark: cold IROpt wall time per catalog
 * curve, legacy sweep-until-fixpoint engine vs the single-build
 * OptContext worklist engine (same pass pipeline, byte-identical
 * results enforced with Module equality).
 *
 * For the largest traced curve the comparison is repeated for every
 * single-pass ablation, since the contract is identical final modules
 * for ANY `--passes` subset, not just the default pipeline. Results
 * go to BENCH_opt.json so the front-end speedup is tracked across
 * PRs alongside BENCH_dse.json.
 */
#include <chrono>

#include "bench_common.h"
#include "compiler/pipeline.h"
#include "core/framework.h"

using namespace finesse;

namespace {

struct EngineRun
{
    Module module;
    OptStats stats;
    double seconds = 0.0;
};

EngineRun
runEngine(const Module &raw, const std::vector<std::string> &passes,
          bool worklist)
{
    EngineRun run;
    run.module = raw; // cold: engine build / map rebuilds included
    const auto t0 = std::chrono::steady_clock::now();
    run.stats = worklist
                    ? runFrontendPipeline(run.module, passes)
                    : runFrontendPipelineSweep(run.module, passes);
    run.seconds = secondsSince(t0);
    return run;
}

} // namespace

int
main()
{
    banner("fig-opt: cold front-end optimize, sweep vs OptContext");

    std::vector<std::string> curves;
    for (const CurveDef &def : curveCatalog()) {
        if (fastMode() && def.name != "BN254N" &&
            def.name != "BLS12-381")
            continue;
        curves.push_back(def.name);
    }

    std::printf("%-12s %9s %9s %6s %9s %11s %8s %5s\n", "curve",
                "instrs", "after", "iters", "sweep s", "worklist s",
                "speedup", "same");

    BenchJson json;
    json.count("curves", curves.size());

    std::string largest;
    size_t largestInstrs = 0;
    double largestSpeedup = 0.0;
    size_t identicalRuns = 0;
    size_t totalRuns = 0;

    for (const std::string &name : curves) {
        const ICurveHandle &h = curveHandle(name);
        const Module raw =
            h.trace(VariantConfig{}, TracePart::Full, false, nullptr);

        const EngineRun sweep =
            runEngine(raw, frontendPassNames(), false);
        const EngineRun worklist =
            runEngine(raw, frontendPassNames(), true);
        const bool identical = sweep.module == worklist.module;
        const double speedup =
            worklist.seconds > 0.0 ? sweep.seconds / worklist.seconds
                                   : 0.0;
        ++totalRuns;
        identicalRuns += identical;

        std::printf("%-12s %9zu %9zu %6d %9.3f %11.3f %7.2fx %5s\n",
                    name.c_str(), raw.size(), worklist.module.size(),
                    worklist.stats.iterations, sweep.seconds,
                    worklist.seconds, speedup,
                    identical ? "yes" : "NO");

        json.num(name + "_sweep_s", sweep.seconds)
            .num(name + "_worklist_s", worklist.seconds)
            .num(name + "_speedup", speedup)
            .count(name + "_identical", identical ? 1 : 0);

        if (raw.size() > largestInstrs) {
            largestInstrs = raw.size();
            largest = name;
            largestSpeedup = speedup;
        }
    }

    // Ablation identity on the largest curve: the worklist engine must
    // match the sweep engine for every single-pass pipeline too.
    size_t ablationsIdentical = 0;
    if (!largest.empty()) {
        const ICurveHandle &h = curveHandle(largest);
        const Module raw =
            h.trace(VariantConfig{}, TracePart::Full, false, nullptr);
        std::printf("\nsingle-pass ablations on %s:\n",
                    largest.c_str());
        for (const std::string &pass : frontendPassNames()) {
            const std::vector<std::string> pipeline = {pass};
            const EngineRun sweep = runEngine(raw, pipeline, false);
            const EngineRun worklist = runEngine(raw, pipeline, true);
            const bool identical = sweep.module == worklist.module;
            ++totalRuns;
            identicalRuns += identical;
            ablationsIdentical += identical;
            std::printf("  %-16s %9zu -> %9zu  %6.3fs vs %6.3fs  %s\n",
                        pass.c_str(), raw.size(),
                        worklist.module.size(), sweep.seconds,
                        worklist.seconds, identical ? "ok" : "MISMATCH");
        }
    }

    std::printf("\nlargest curve %s: %.2fx front-end speedup, "
                "%zu/%zu runs byte-identical\n",
                largest.c_str(), largestSpeedup, identicalRuns,
                totalRuns);

    json.str("largest", largest)
        .num("largest_speedup", largestSpeedup)
        .count("ablations_identical", ablationsIdentical)
        .count("identical_runs", identicalRuns)
        .count("total_runs", totalRuns);
    json.write("BENCH_opt.json");

    return identicalRuns == totalRuns ? 0 : 1;
}
