/**
 * @file
 * Figure 2 reproduction: operator-level optimization combinations on
 * BLS24-509 (single-issue pipeline). Disabling Karatsuba at individual
 * tower levels trades Long (mul) instructions against linear
 * instructions; on a single-issue pipeline the all-Karatsuba choice is
 * not optimal. Values are normalized to the all-Karatsuba combination.
 */
#include "bench_common.h"
#include "dse/explorer.h"

using namespace finesse;

int
main()
{
    banner("Figure 2: operator-variant combinations, BLS24-509, O-Ate");
    const char *curve = fastMode() ? "BN254N" : "BLS24-509";
    Explorer ex(curve);
    std::printf("curve: %s, hardware: %s\n\n", curve,
                PipelineModel::paperDefault().describe().c_str());

    struct Combo
    {
        std::string name;
        VariantConfig cfg;
    };
    std::vector<Combo> combos;
    combos.push_back({"karat. all", ex.allKaratsuba()});
    for (int d : ex.towerDegrees()) {
        VariantConfig cfg = ex.allKaratsuba();
        cfg.levels[d].mul = MulVariant::Schoolbook;
        if (d == 6 || (d == 12 && ex.framework().info().k == 24))
            cfg.levels[d].sqr = SqrVariant::Schoolbook;
        combos.push_back({"karat. w/o p" + std::to_string(d), cfg});
    }
    combos.push_back({"karat. optimal(manual)", ex.manualHeuristic()});

    std::vector<DsePoint> pts;
    for (const Combo &c : combos) {
        CompileOptions opt;
        opt.variants = c.cfg;
        pts.push_back(ex.evaluate(opt, 1, c.name));
    }

    const DsePoint &base = pts.front();
    TextTable t;
    t.header({"Combination", "mul instr", "lin instr", "total cycle",
              "norm.mul", "norm.lin", "norm.cycle"});
    for (const DsePoint &p : pts) {
        t.row({p.label, fmtK(double(p.mulInstrs)),
               fmtK(double(p.linInstrs)), fmtK(double(p.cycles)),
               fmt(double(p.mulInstrs) / double(base.mulInstrs)),
               fmt(double(p.linInstrs) / double(base.linInstrs)),
               fmt(double(p.cycles) / double(base.cycles))});
    }
    t.print();
    std::printf("\nShape check (paper): disabling Karatsuba at low tower "
                "levels reduces total cycles on a single-issue "
                "pipeline.\n");
    return 0;
}
