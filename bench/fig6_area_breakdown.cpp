/**
 * @file
 * Figure 6 reproduction: hardware area breakdown of the 1-core and
 * 8-core BN254N accelerators (shared instruction memory amortization).
 */
#include "bench_common.h"
#include "dse/explorer.h"

using namespace finesse;

int
main()
{
    banner("Figure 6: hardware area breakdown (BN254N, L=38/S=8)");
    Framework fw("BN254N");
    const CompileResult res = fw.compile(CompileOptions{});

    TextTable t;
    t.header({"Config", "Total(mm^2)", "IMem%", "ALU%", "DMem%",
              "mmul%ofALU", "thpt.gain", "area.gain", "eff.gain"});
    const AreaReport one = fw.area(res, 1);
    double baseEff = 1.0 / one.totalArea;
    for (int cores : {1, 2, 4, 8, 16}) {
        const AreaReport r = fw.area(res, cores);
        const double thptGain = cores; // same program per core (SIMT)
        const double areaGain = r.totalArea / one.totalArea;
        const double effGain = (thptGain / r.totalArea) / baseEff;
        t.row({std::to_string(cores) + "-core", fmt(r.totalArea),
               fmt(r.pctImem(), 1), fmt(r.pctAlu(), 1),
               fmt(r.pctDmem(), 1),
               fmt(100.0 * r.mmulArea / r.aluArea(), 1), fmt(thptGain, 1),
               fmt(areaGain, 2), fmt(effGain, 2)});
    }
    t.print();
    std::printf(
        "\nPaper anchors: 1-core 1.77 mm^2 with IMem ~50%%; 8-core "
        "8.00 mm^2 with IMem ~11%%, 4.5x area for 8x throughput "
        "(+77%% area efficiency).\n");
    return 0;
}
