/**
 * @file
 * Shared helpers for the paper-reproduction benchmark harnesses.
 */
#ifndef FINESSE_BENCH_BENCH_COMMON_H_
#define FINESSE_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "support/table.h"

namespace finesse {

inline std::string
fmt(double v, int prec = 2)
{
    std::ostringstream os;
    os.precision(prec);
    os << std::fixed << v;
    return os.str();
}

inline std::string
fmtK(double v, int prec = 1)
{
    if (v >= 1e6)
        return fmt(v / 1e6, prec) + "M";
    if (v >= 1e3)
        return fmt(v / 1e3, prec) + "k";
    return fmt(v, prec);
}

/** Quick-run mode: FINESSE_FAST=1 restricts sweeps for smoke testing. */
inline bool
fastMode()
{
    const char *env = std::getenv("FINESSE_FAST");
    return env && env[0] == '1';
}

inline void
banner(const char *title)
{
    std::printf("\n=== %s ===\n\n", title);
}

/**
 * Flat JSON emitter for machine-readable bench results (BENCH_*.json):
 * insertion-ordered keys, number/string values, no dependencies. Used
 * to track the perf trajectory (e.g. serial vs parallel sweep wall
 * time) across PRs.
 */
class BenchJson
{
  public:
    BenchJson &
    num(const std::string &key, double value)
    {
        std::ostringstream os;
        os << value; // shortest round-trippable-enough form
        fields_.emplace_back(key, os.str());
        return *this;
    }

    BenchJson &
    count(const std::string &key, size_t value)
    {
        fields_.emplace_back(key, std::to_string(value));
        return *this;
    }

    BenchJson &
    str(const std::string &key, const std::string &value)
    {
        std::string quoted = "\"";
        for (char c : value) {
            if (c == '"' || c == '\\')
                quoted += '\\';
            quoted += c;
        }
        quoted += '"';
        fields_.emplace_back(key, quoted);
        return *this;
    }

    std::string
    dump() const
    {
        std::string out = "{";
        for (size_t i = 0; i < fields_.size(); ++i) {
            if (i)
                out += ", ";
            out += "\"" + fields_[i].first + "\": " + fields_[i].second;
        }
        out += "}\n";
        return out;
    }

    /** Write to @p path; prints a note, warns (non-fatal) on failure. */
    void
    write(const std::string &path) const
    {
        std::ofstream out(path);
        if (!out) {
            std::fprintf(stderr, "warning: cannot write %s\n",
                         path.c_str());
            return;
        }
        out << dump();
        std::printf("wrote %s\n", path.c_str());
    }

  private:
    std::vector<std::pair<std::string, std::string>> fields_;
};

} // namespace finesse

#endif // FINESSE_BENCH_BENCH_COMMON_H_
