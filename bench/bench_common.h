/**
 * @file
 * Shared helpers for the paper-reproduction benchmark harnesses.
 */
#ifndef FINESSE_BENCH_BENCH_COMMON_H_
#define FINESSE_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "support/table.h"

namespace finesse {

inline std::string
fmt(double v, int prec = 2)
{
    std::ostringstream os;
    os.precision(prec);
    os << std::fixed << v;
    return os.str();
}

inline std::string
fmtK(double v, int prec = 1)
{
    if (v >= 1e6)
        return fmt(v / 1e6, prec) + "M";
    if (v >= 1e3)
        return fmt(v / 1e3, prec) + "k";
    return fmt(v, prec);
}

/** Quick-run mode: FINESSE_FAST=1 restricts sweeps for smoke testing. */
inline bool
fastMode()
{
    const char *env = std::getenv("FINESSE_FAST");
    return env && env[0] == '1';
}

inline void
banner(const char *title)
{
    std::printf("\n=== %s ===\n\n", title);
}

} // namespace finesse

#endif // FINESSE_BENCH_BENCH_COMMON_H_
