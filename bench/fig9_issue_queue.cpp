/**
 * @file
 * Figure 9 reproduction: issue-queue waterfall before/after scheduling
 * and issue-slot affinity optimization. For each curve, a window of the
 * issue stream starting at cycle 10,000 is rendered: 'L' = Long (mul)
 * issue, 'S' = Short (linear) issue, '.' = bubble.
 */
#include "bench_common.h"
#include "dse/explorer.h"

using namespace finesse;

namespace {

std::string
renderWindow(const CycleStats &stats, i64 start, i64 len)
{
    std::string line(static_cast<size_t>(len), '.');
    for (const IssueSample &s : stats.window) {
        const i64 off = s.cycle - start;
        if (off < 0 || off >= len)
            continue;
        char c = '.';
        if (s.longOps && s.shortOps)
            c = '*'; // VLIW slot with both
        else if (s.longOps)
            c = 'L';
        else if (s.shortOps)
            c = 'S';
        else if (s.invOps)
            c = 'I';
        line[static_cast<size_t>(off)] = c;
    }
    return line;
}

} // namespace

int
main()
{
    banner("Figure 9: issue queue before/after scheduling + affinity");
    const i64 kStart = 10000;
    const i64 kLen = 72;

    std::vector<std::string> names;
    for (const CurveDef &def : curveCatalog())
        names.push_back(def.name);
    if (fastMode())
        names = {"BN254N"};

    std::printf("window: cycles %lld..%lld; L=Long issue, S=Short "
                "issue, .=bubble\n\n",
                static_cast<long long>(kStart),
                static_cast<long long>(kStart + kLen - 1));

    TextTable summary;
    summary.header({"Curve", "IPC before", "IPC after", "bubbles before",
                    "bubbles after"});
    for (const std::string &name : names) {
        Framework fw(name);
        CompileOptions before;
        before.optimize = true;
        before.listSchedule = false;
        CompileOptions after;
        const CompileResult rb = fw.compile(before);
        const CompileResult ra = fw.compile(after);
        const CycleStats sb = simulateCycles(rb.prog, kStart, kLen);
        const CycleStats sa = simulateCycles(ra.prog, kStart, kLen);

        std::printf("%-10s before %s\n", name.c_str(),
                    renderWindow(sb, kStart, kLen).c_str());
        std::printf("%-10s after  %s\n\n", name.c_str(),
                    renderWindow(sa, kStart, kLen).c_str());
        summary.row({name, fmt(sb.ipc()), fmt(sa.ipc()),
                     fmtK(double(sb.bubbles)), fmtK(double(sa.bubbles))});
    }
    summary.print();
    return 0;
}
