/**
 * @file
 * Figure 8 reproduction: scalability across curve widths and security
 * levels. (a) pairing delay and area versus k*log p; (b) delay/area
 * normalized by the SexTNFS security level.
 */
#include "bench_common.h"
#include "dse/explorer.h"

using namespace finesse;

int
main()
{
    banner("Figure 8: scalability across the curve catalog");
    TextTable t;
    t.header({"Curve", "SecLvl", "k*logp", "cycles", "delay(us)",
              "area(mm^2)", "delay/klogp", "area/klogp(um2/bit)",
              "area/k2log2p", "delay/Sec", "area/Sec(um2/bit)"});

    std::vector<std::string> names;
    for (const CurveDef &def : curveCatalog())
        names.push_back(def.name);
    if (fastMode())
        names = {"BN254N", "BLS12-381"};

    TimingModel timing;
    for (const std::string &name : names) {
        Explorer ex(name);
        const CurveInfo &info = ex.framework().info();
        CompileOptions opt;
        const DsePoint p = ex.evaluate(opt, 1, name);
        const double klogp = info.kLogP();
        const double sec = info.def.securityBits;
        t.row({name, fmt(sec, 0), fmt(klogp, 0), fmtK(double(p.cycles)),
               fmt(p.latencyUs, 1), fmt(p.areaMm2, 2),
               fmt(p.latencyUs / klogp * 1e3, 2) + "ns/bit",
               fmt(p.areaMm2 * 1e6 / klogp, 0),
               fmt(p.areaMm2 * 1e12 / (klogp * klogp * 1.0), 3),
               fmt(p.latencyUs / sec, 2) + "us/bit",
               fmt(p.areaMm2 * 1e6 / sec, 0)});
    }
    t.print();
    std::printf(
        "\nShape checks (paper): delay grows ~linearly with k*log p; "
        "area/klogp stays flat to slightly super-linear (far below the "
        "quadratic bound area/k^2log^2p); delay/security stays roughly "
        "stable as the security level rises.\n");
    return 0;
}
