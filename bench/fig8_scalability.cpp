/**
 * @file
 * Figure 8 reproduction: scalability across curve widths and security
 * levels. (a) pairing delay and area versus k*log p; (b) delay/area
 * normalized by the SexTNFS security level.
 */
#include <chrono>

#include "bench_common.h"
#include "dse/explorer.h"
#include "support/threadpool.h"

using namespace finesse;

int
main()
{
    banner("Figure 8: scalability across the curve catalog");
    TextTable t;
    t.header({"Curve", "SecLvl", "k*logp", "cycles", "delay(us)",
              "area(mm^2)", "delay/klogp", "area/klogp(um2/bit)",
              "area/k2log2p", "delay/Sec", "area/Sec(um2/bit)"});

    std::vector<std::string> names;
    for (const CurveDef &def : curveCatalog())
        names.push_back(def.name);
    if (fastMode())
        names = {"BN254N", "BLS12-381"};

    // Each curve is one independent compile + simulate + area
    // evaluation; fan the catalog out over the pool and emit the
    // table rows in index order afterwards.
    const int jobs = resolveJobs(0);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<DsePoint> points(names.size());
    parallelFor(names.size(), jobs, [&](size_t i) {
        Explorer ex(names[i]);
        points[i] = ex.evaluate(CompileOptions{}, 1, names[i]);
    });
    const double sweepSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    for (size_t i = 0; i < names.size(); ++i) {
        const CurveInfo &info = Framework(names[i]).info();
        const DsePoint &p = points[i];
        const double klogp = info.kLogP();
        const double sec = info.def.securityBits;
        t.row({names[i], fmt(sec, 0), fmt(klogp, 0),
               fmtK(double(p.cycles)),
               fmt(p.latencyUs, 1), fmt(p.areaMm2, 2),
               fmt(p.latencyUs / klogp * 1e3, 2) + "ns/bit",
               fmt(p.areaMm2 * 1e6 / klogp, 0),
               fmt(p.areaMm2 * 1e12 / (klogp * klogp * 1.0), 3),
               fmt(p.latencyUs / sec, 2) + "us/bit",
               fmt(p.areaMm2 * 1e6 / sec, 0)});
    }
    t.print();
    std::printf("\n(%zu curves evaluated on %d workers in %.2f s)\n",
                names.size(), jobs, sweepSeconds);
    std::printf(
        "\nShape checks (paper): delay grows ~linearly with k*log p; "
        "area/klogp stays flat to slightly super-linear (far below the "
        "quadratic bound area/k^2log^2p); delay/security stays roughly "
        "stable as the security level rises.\n");
    return 0;
}
