/**
 * @file
 * Figure 11 reproduction: co-design over the ALU family (mmul pipeline
 * depth = Long instruction cycles). Deeper pipelines shorten the
 * critical path until it floors, while IPC decreases (the O-Ate
 * dependence chains tolerate less latency); throughput peaks at an
 * intermediate depth (38 in the paper's setup).
 */
#include "bench_common.h"
#include "dse/explorer.h"

using namespace finesse;

int
main()
{
    banner("Figure 11: co-design over mmul pipeline depth (BN254N)");
    Explorer ex("BN254N");
    const int bits = ex.framework().info().logP();
    TimingModel timing;

    // Trace once; only the backend depends on the latency model.
    const Module m = ex.framework().handle().trace(
        VariantConfig{}, TracePart::Full, true, nullptr);

    TextTable t;
    t.header({"Long(cy)", "IPC", "CritPath(ns)", "Freq(MHz)",
              "Cycles(k)", "Throughput(kops)"});
    double bestThpt = 0;
    int bestDepth = 0;
    for (int depth : {14, 17, 20, 23, 26, 29, 32, 35, 38, 41}) {
        PipelineModel hw;
        hw.longLat = depth;
        const DsePoint p = ex.evaluateModule(m, hw, 1, "depth");
        const double thptK = p.throughputOps / 1e3;
        if (p.throughputOps > bestThpt) {
            bestThpt = p.throughputOps;
            bestDepth = depth;
        }
        t.row({std::to_string(depth), fmt(p.ipc),
               fmt(timing.criticalPathNs(bits, depth)),
               fmt(timing.frequencyMHz(bits, depth), 0),
               fmt(double(p.cycles) / 1e3, 1), fmt(thptK, 2)});
    }
    t.print();
    std::printf("\nOptimal depth: %d cycles (paper: 38 on its "
                "technology/EDA setup). IPC falls with depth; critical "
                "path floors past the knee.\n",
                bestDepth);
    return 0;
}
