/**
 * @file
 * Search-based Pareto DSE against the exhaustive Fig. 10 grid, plus
 * the persistent artifact cache's warm-vs-cold trajectory
 * (BENCH_search.json).
 *
 * Four legs on BN254N (three tower levels -> the paper-shaped
 * 55-point grid: 3 preset + 8 mul-variant combos x 5 pipeline
 * models):
 *
 *  1. grid  -- exhaustive enumeration of the 55-point grid, artifact
 *              cache force-disabled. Its Pareto frontier is the
 *              reference the search must dominate or match.
 *  2. cold  -- the seeded Pareto search with the cache disabled: the
 *              honest end-to-end search cost, and the reference wall
 *              time the warm leg is measured against. Identical on
 *              every invocation (never touches the disk).
 *  3. prime -- the same seeded search with the artifact cache enabled
 *              at FINESSE_ARTIFACT_CACHE (default ./fig_search_cache).
 *              On the first invocation this populates the cache; from
 *              the second invocation on, every design point is a
 *              point-artifact hit, so NO front-end trace is performed
 *              (trace_hit_rate 1.0, frontend_traces_performed 0 --
 *              the CI double-run gate).
 *  4. warm  -- the search once more in the same process against the
 *              now-hot cache: wall time is pure cache replay.
 *              warm_speedup = cold/warm is gated by bench_check; the
 *              emitted value is capped (the raw ratio's denominator
 *              is milliseconds and would make the 20%-drop gate
 *              flaky; the cap keeps the gate meaningful at the scale
 *              the acceptance bar cares about).
 *
 * Determinism: all three search legs must produce the SAME frontier
 * fingerprint (dse/search.h contract); any divergence fails the run.
 */
#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "bench_common.h"
#include "dse/explorer.h"
#include "dse/search.h"
#include "support/diskcache.h"
#include "support/threadpool.h"

using namespace finesse;

namespace {

double
wallSeconds(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

std::string
hex16(u64 v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return std::string(buf);
}

} // namespace

int
main()
{
    banner("Pareto search vs exhaustive grid + artifact cache");
    const char *curve = "BN254N";
    Explorer ex(curve);
    const int jobs = resolveJobs(0);

    // The grid and cold legs must never see the cache, whatever the
    // environment says; the prime/warm legs opt back in explicitly.
    const char *envDir = std::getenv(kArtifactCacheEnv);
    const std::string cacheDir =
        envDir != nullptr && envDir[0] != '\0' ? envDir
                                               : "fig_search_cache";
    configureArtifactCache("");

    // Leg 1: the exhaustive Fig. 10 grid (presets + mul-variant
    // space x pipeline models), exactly the enumeration the search
    // replaces.
    std::vector<VariantConfig> cfgs = {ex.manualHeuristic(),
                                       ex.allSchoolbook(),
                                       ex.allKaratsuba()};
    const auto space = ex.variantSpace(true);
    cfgs.insert(cfgs.end(), space.begin(), space.end());
    std::vector<DseRequest> reqs;
    for (const PipelineModel &hw : fig10HardwareModels()) {
        for (const VariantConfig &cfg : cfgs) {
            DseRequest req;
            req.opt.variants = cfg;
            req.opt.hw = hw;
            req.label = "grid";
            reqs.push_back(std::move(req));
        }
    }
    clearTraceCache();
    const auto tGrid = std::chrono::steady_clock::now();
    const std::vector<DsePoint> grid = ex.evaluateAll(reqs, jobs);
    const double gridSeconds = wallSeconds(tGrid);
    const std::vector<DsePoint> gridFrontier = paretoFrontier(grid);

    SearchOptions sopt;
    sopt.seed = 1;
    sopt.generations = 12;
    sopt.population = 64;
    sopt.base.jobs = jobs;
    const SearchSpace sspace = SearchSpace::standard(ex);

    // Leg 2: cold search, cache disabled.
    clearTraceCache();
    const auto tCold = std::chrono::steady_clock::now();
    ParetoSearch coldSearch(ex, sspace, sopt);
    const SearchResult cold = coldSearch.run();
    const double coldSeconds = wallSeconds(tCold);
    const u64 fpCold = frontierFingerprint(cold.frontier);

    // Leg 3: cache-enabled search (primes on the first invocation;
    // pure point-artifact replay from the second on).
    configureArtifactCache(cacheDir);
    clearTraceCache();
    ParetoSearch primeSearch(ex, sspace, sopt);
    const SearchResult prime = primeSearch.run();
    const u64 fpPrime = frontierFingerprint(prime.frontier);
    const TraceCacheStats tc = traceCacheStats();
    const size_t traceLookups = tc.diskHits + tc.diskMisses;
    const double traceHitRate =
        traceLookups > 0
            ? static_cast<double>(tc.diskHits) /
                  static_cast<double>(traceLookups)
            : 1.0;
    const size_t tracesPerformed = tc.tracesPerformed();

    // Leg 4: warm re-search against the hot cache.
    clearTraceCache();
    const auto tWarm = std::chrono::steady_clock::now();
    ParetoSearch warmSearch(ex, sspace, sopt);
    const SearchResult warm = warmSearch.run();
    const double warmSeconds = wallSeconds(tWarm);
    const u64 fpWarm = frontierFingerprint(warm.frontier);

    const double warmSpeedupRaw =
        warmSeconds > 0 ? coldSeconds / warmSeconds : 0.0;
    const double warmSpeedup = std::min(warmSpeedupRaw, 25.0);

    // Acceptance checks ------------------------------------------------
    size_t failures = 0;
    const size_t determinismMismatches =
        (fpPrime != fpCold ? 1u : 0u) + (fpWarm != fpCold ? 1u : 0u);
    if (determinismMismatches != 0) {
        std::fprintf(stderr,
                     "FAIL: frontier fingerprints diverge (cold %s, "
                     "prime %s, warm %s)\n",
                     hex16(fpCold).c_str(), hex16(fpPrime).c_str(),
                     hex16(fpWarm).c_str());
        ++failures;
    }
    const bool covers = frontierCovers(cold.frontier, gridFrontier);
    if (!covers) {
        std::fprintf(stderr, "FAIL: searched frontier does not cover "
                             "the exhaustive grid frontier\n");
        for (const DsePoint &g : gridFrontier) {
            bool dominated = false;
            for (const DsePoint &s : cold.frontier)
                dominated = dominated || weaklyDominates(s, g);
            if (!dominated)
                std::fprintf(
                    stderr,
                    "  uncovered: %s hw=L%d,S%d,W%d,lin%d,b%d,f%d "
                    "area=%.3f thpt=%.1f\n",
                    g.variants.cacheKey().c_str(), g.hw.longLat,
                    g.hw.shortLat, g.hw.issueWidth, g.hw.numLinUnits,
                    g.hw.numBanks, g.hw.fifoDepth, g.areaMm2,
                    g.throughputOps);
        }
        ++failures;
    }
    const double coverageX =
        static_cast<double>(cold.stats.evaluatedUnique) /
        static_cast<double>(grid.size());
    if (coverageX < 10.0) {
        std::fprintf(stderr,
                     "FAIL: search evaluated only %.1fx the grid "
                     "(%zu vs %zu points; need >= 10x)\n",
                     coverageX, cold.stats.evaluatedUnique, grid.size());
        ++failures;
    }
    if (warmSpeedup <= 2.0) {
        std::fprintf(stderr,
                     "FAIL: warm re-search speedup %.2fx (need > 2x)\n",
                     warmSpeedup);
        ++failures;
    }

    std::printf("grid: %zu points in %.2f s -> %zu-point frontier\n",
                grid.size(), gridSeconds, gridFrontier.size());
    std::printf("search: %zu unique points (%.1fx grid) of a "
                "%llu-point space -> %zu-point frontier "
                "(fingerprint %s)\n",
                cold.stats.evaluatedUnique, coverageX,
                static_cast<unsigned long long>(cold.stats.spaceSize),
                cold.frontier.size(), hex16(fpCold).c_str());
    std::printf("frontier covers grid: %s\n", covers ? "yes" : "NO");
    std::printf("cold %.2f s | warm %.3f s | speedup %.1fx "
                "(raw %.1fx) | trace hit rate %.2f | %zu traces "
                "performed | point cache: %zu hits, %zu puts\n",
                coldSeconds, warmSeconds, warmSpeedup, warmSpeedupRaw,
                traceHitRate, tracesPerformed,
                prime.stats.pointCacheHits, prime.stats.pointCachePuts);

    TextTable t;
    t.header({"Pareto design", "cycles", "mm^2", "ops/s", "ops/s/mm^2"});
    for (const DsePoint &p : cold.frontier) {
        t.row({p.label, fmtK(static_cast<double>(p.cycles)),
               fmt(p.areaMm2), fmtK(p.throughputOps),
               fmtK(p.thptPerArea)});
    }
    t.print();

    BenchJson json;
    json.str("bench", "fig_search")
        .str("curve", curve)
        .str("mode", fastMode() ? "fast" : "full")
        .count("space_size", static_cast<size_t>(cold.stats.spaceSize))
        .count("grid_points", grid.size())
        .count("grid_frontier_points", gridFrontier.size())
        .count("searched_unique", cold.stats.evaluatedUnique)
        .num("coverage_x", coverageX)
        .count("frontier_points", cold.frontier.size())
        .count("frontier_covers_grid", covers ? 1 : 0)
        .count("determinism_mismatches", determinismMismatches)
        .str("frontier_fingerprint", hex16(fpCold))
        .num("grid_seconds", gridSeconds)
        .num("cold_seconds", coldSeconds)
        .num("warm_seconds", warmSeconds)
        .num("warm_speedup", warmSpeedup)
        .num("warm_speedup_raw", warmSpeedupRaw)
        .num("trace_hit_rate", traceHitRate)
        .count("frontend_traces_performed", tracesPerformed)
        .count("point_cache_hits", prime.stats.pointCacheHits)
        .count("point_cache_puts", prime.stats.pointCachePuts)
        .count("jobs", static_cast<size_t>(jobs));
    json.write("BENCH_search.json");

    return failures == 0 ? 0 : 1;
}
