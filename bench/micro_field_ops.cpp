/**
 * @file
 * Microbenchmark of the fixed-limb Montgomery kernels (bigint/montkernel.h)
 * against the generic runtime-width CIOS oracle, across the catalog
 * curves' base fields: mul/sqr/inv latency and kernel-vs-generic speedup
 * per curve, plus the aggregate gated `speedup` (mul+sqr throughput
 * ratio on the 4-limb BN254N field, the dominant pairing width).
 *
 * Measurement methodology: this machine's clock drifts enough between
 * runs to swamp a 2x ratio, so each kernel/generic pair is measured in
 * short adjacent interleaved batches (kernel batch, generic batch,
 * repeat) and the ratio taken over the summed times — frequency drift
 * then affects both sides equally. Ratios are stable to a few percent
 * where isolated back-to-back loops swing 20%+.
 *
 * Also a correctness gate: kernel and generic results are compared on
 * every stream at the end; any mismatch exits non-zero.
 */
#include "bench_common.h"

#include "bigint/mont.h"
#include "curve/catalog.h"
#include "support/rng.h"

namespace finesse {
namespace {

/**
 * Time two operations in interleaved adjacent batches over four
 * independent dependency streams; returns per-op nanoseconds for each.
 */
template <typename FA, typename FB>
void
pairNs(Residue *s, const Residue &b, int batch, int reps, FA opA, FB opB,
       double &nsA, double &nsB)
{
    double ta = 0, tb = 0;
    for (int r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < batch; ++i) {
            opA(s[0], b);
            opA(s[1], b);
            opA(s[2], b);
            opA(s[3], b);
        }
        ta += secondsSince(t0);
        t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < batch; ++i) {
            opB(s[0], b);
            opB(s[1], b);
            opB(s[2], b);
            opB(s[3], b);
        }
        tb += secondsSince(t0);
    }
    nsA = ta * 1e9 / (4.0 * batch * reps);
    nsB = tb * 1e9 / (4.0 * batch * reps);
}

struct CurveResult
{
    std::string name;
    size_t limbs = 0;
    double mulKernel = 0, mulGeneric = 0;
    double sqrKernel = 0, sqrGeneric = 0;
    double invXgcd = 0, invFermat = 0;
    bool identical = true;
};

CurveResult
benchCurve(const CurveInfo &info)
{
    CurveResult res;
    res.name = info.def.name;
    const MontCtx ctx(info.p);
    res.limbs = ctx.limbCount();

    Rng rng(77);
    Residue s[4];
    for (auto &x : s)
        x = ctx.toMont(BigInt::randomBelow(rng, info.p));
    const Residue b = ctx.toMont(BigInt::randomBelow(rng, info.p));

    const bool fast = fastMode();
    const int batch = fast ? 2000 : 20000;
    const int reps = fast ? 5 : 15;
    pairNs(
        s, b, batch, reps,
        [&](Residue &r, const Residue &o) { ctx.mul(r, r, o); },
        [&](Residue &r, const Residue &o) { ctx.mulGeneric(r, r, o); },
        res.mulKernel, res.mulGeneric);
    pairNs(
        s, b, batch, reps,
        [&](Residue &r, const Residue &) { ctx.sqr(r, r); },
        [&](Residue &r, const Residue &) { ctx.sqrGeneric(r, r); },
        res.sqrKernel, res.sqrGeneric);
    // Inversion is microseconds-scale: smaller batches suffice, and the
    // baseline is the historical Fermat ladder.
    pairNs(
        s, b, fast ? 20 : 100, fast ? 3 : 8,
        [&](Residue &r, const Residue &) { ctx.inv(r, r); },
        [&](Residue &r, const Residue &) { ctx.invFermat(r, r); },
        res.invXgcd, res.invFermat);

    // Identity gate: after identical op sequences, kernel and generic
    // streams must agree bit-for-bit. Replay a mixed sequence.
    for (int lane = 0; lane < 4; ++lane) {
        Residue k = s[lane], g = s[lane];
        for (int i = 0; i < 64; ++i) {
            ctx.mul(k, k, b);
            ctx.mulGeneric(g, g, b);
            ctx.sqr(k, k);
            ctx.sqrGeneric(g, g);
            ctx.add(k, k, b);
            ctx.addGeneric(g, g, b);
        }
        res.identical = res.identical && k == g;
    }
    return res;
}

} // namespace
} // namespace finesse

int
main()
{
    using namespace finesse;

    banner("micro_field_ops: fixed-limb Montgomery kernels vs generic CIOS");

    std::vector<CurveResult> results;
    for (const CurveDef &def : curveCatalog()) {
        if (fastMode() && def.name != "BN254N")
            continue;
        results.push_back(benchCurve(deriveCurveInfo(def)));
    }

    std::printf("%-11s %5s  %8s %8s %7s  %8s %8s %7s  %9s %9s %7s\n",
                "curve", "limbs", "mul", "gen", "x", "sqr", "gen", "x",
                "inv", "fermat", "x");
    bool allIdentical = true;
    double aggregate = 0;
    BenchJson json;
    json.str("bench", "micro_field_ops");
    json.count("curves", results.size());
    for (const CurveResult &r : results) {
        std::printf("%-11s %5zu  %6.1fns %6.1fns %6.2fx  %6.1fns %6.1fns "
                    "%6.2fx  %7.2fus %7.2fus %6.2fx\n",
                    r.name.c_str(), r.limbs, r.mulKernel, r.mulGeneric,
                    r.mulGeneric / r.mulKernel, r.sqrKernel, r.sqrGeneric,
                    r.sqrGeneric / r.sqrKernel, r.invXgcd / 1e3,
                    r.invFermat / 1e3, r.invFermat / r.invXgcd);
        json.num(r.name + "_mul_ns", r.mulKernel);
        json.num(r.name + "_sqr_ns", r.sqrKernel);
        json.num(r.name + "_inv_ns", r.invXgcd);
        json.num(r.name + "_mul_speedup", r.mulGeneric / r.mulKernel);
        json.num(r.name + "_sqr_speedup", r.sqrGeneric / r.sqrKernel);
        json.num(r.name + "_inv_speedup", r.invFermat / r.invXgcd);
        json.count(r.name + "_identical", r.identical ? 1 : 0);
        allIdentical = allIdentical && r.identical;
        if (r.name == "BN254N") {
            aggregate = (r.mulGeneric + r.sqrGeneric) /
                        (r.mulKernel + r.sqrKernel);
        }
    }
    // The gated aggregate: mul+sqr throughput ratio on the 4-limb BN254N
    // base field (spare-top-bit fast path; ADX asm where the CPU has it).
    json.num("speedup", aggregate);
    json.count("identical_curves", allIdentical ? results.size() : 0);
    json.write("BENCH_field.json");

    std::printf("\nBN254N mul+sqr throughput speedup: %.2fx%s\n", aggregate,
                allIdentical ? "" : "  [IDENTITY MISMATCH]");
    return allIdentical ? 0 : 1;
}
