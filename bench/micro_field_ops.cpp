/**
 * @file
 * Microbenchmarks of the native operator kit (google-benchmark),
 * supporting the cost hierarchy of Table 3: extension-field
 * multiplication/squaring costs across tower levels, point operations,
 * Miller loop and final exponentiation.
 */
#include <benchmark/benchmark.h>

#include "pairing/cache.h"

namespace finesse {
namespace {

Rng gRng(77);

const CurveSystem12 &
bn254()
{
    return curveSystem12("BN254N");
}

Fp
randFp(const FpCtx *ctx, const BigInt &p)
{
    return Fp::fromBig(ctx, BigInt::randomBelow(gRng, p));
}

template <typename F>
F
randElem(const typename F::Ctx *ctx, const FpCtx *fp, const BigInt &p,
         int coeffs)
{
    std::vector<BigInt> v;
    for (int i = 0; i < coeffs; ++i)
        v.push_back(BigInt::randomBelow(gRng, p));
    auto it = v.begin();
    return F::fromFpCoeffs(ctx, it);
}

void
BM_FpMul(benchmark::State &state)
{
    const auto &sys = bn254();
    Fp a = randFp(&sys.fpCtx(), sys.info().p);
    Fp b = randFp(&sys.fpCtx(), sys.info().p);
    for (auto _ : state) {
        a = a.mul(b);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_FpMul);

void
BM_FpInv(benchmark::State &state)
{
    const auto &sys = bn254();
    Fp a = randFp(&sys.fpCtx(), sys.info().p);
    for (auto _ : state) {
        benchmark::DoNotOptimize(a.inv());
    }
}
BENCHMARK(BM_FpInv);

void
BM_Fp2Mul(benchmark::State &state)
{
    const auto &sys = bn254();
    auto a = randElem<Fp2>(&sys.tower().fp2, &sys.fpCtx(), sys.info().p, 2);
    auto b = randElem<Fp2>(&sys.tower().fp2, &sys.fpCtx(), sys.info().p, 2);
    for (auto _ : state) {
        a = a.mul(b);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_Fp2Mul);

void
BM_Fp12Mul(benchmark::State &state)
{
    const auto &sys = bn254();
    auto a = randElem<Fp12>(&sys.tower().fp12, &sys.fpCtx(), sys.info().p,
                            12);
    auto b = randElem<Fp12>(&sys.tower().fp12, &sys.fpCtx(), sys.info().p,
                            12);
    for (auto _ : state) {
        a = a.mul(b);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_Fp12Mul);

void
BM_Fp12Sqr(benchmark::State &state)
{
    const auto &sys = bn254();
    auto a = randElem<Fp12>(&sys.tower().fp12, &sys.fpCtx(), sys.info().p,
                            12);
    for (auto _ : state) {
        a = a.sqr();
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_Fp12Sqr);

void
BM_Fp24Mul(benchmark::State &state)
{
    const auto &sys = curveSystem24("BLS24-509");
    auto a = randElem<Fp24>(&sys.tower().fp24, &sys.fpCtx(), sys.info().p,
                            24);
    auto b = randElem<Fp24>(&sys.tower().fp24, &sys.fpCtx(), sys.info().p,
                            24);
    for (auto _ : state) {
        a = a.mul(b);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_Fp24Mul);

void
BM_G1ScalarMul(benchmark::State &state)
{
    const auto &sys = bn254();
    const auto p = sys.randomG1(gRng);
    const BigInt k = BigInt::randomBelow(gRng, sys.info().r);
    for (auto _ : state) {
        benchmark::DoNotOptimize(scalarMul(sys.g1Curve(), p, k));
    }
}
BENCHMARK(BM_G1ScalarMul);

void
BM_MillerLoopBN254(benchmark::State &state)
{
    const auto &sys = bn254();
    const auto p = sys.randomG1(gRng);
    const auto q = sys.randomG2(gRng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sys.engine().miller(p.x, p.y, q.x, q.y));
    }
}
BENCHMARK(BM_MillerLoopBN254);

void
BM_FinalExpBN254(benchmark::State &state)
{
    const auto &sys = bn254();
    const auto p = sys.randomG1(gRng);
    const auto q = sys.randomG2(gRng);
    const auto f = sys.engine().miller(p.x, p.y, q.x, q.y);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sys.engine().finalExp(f));
    }
}
BENCHMARK(BM_FinalExpBN254);

void
BM_FullPairing(benchmark::State &state)
{
    const auto &sys = bn254();
    const auto p = sys.randomG1(gRng);
    const auto q = sys.randomG2(gRng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sys.pair(p, q));
    }
}
BENCHMARK(BM_FullPairing);

void
BM_FullPairingBLS12_381(benchmark::State &state)
{
    const auto &sys = curveSystem12("BLS12-381");
    const auto p = sys.randomG1(gRng);
    const auto q = sys.randomG2(gRng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sys.pair(p, q));
    }
}
BENCHMARK(BM_FullPairingBLS12_381);

} // namespace
} // namespace finesse

BENCHMARK_MAIN();
