/**
 * @file
 * Co-design walkthrough: the paper's agile loop from the perspective of
 * a hardware designer bringing up an accelerator for a *new* security
 * target (BLS12-446, 130-bit). The loop:
 *   1. compile with default variants on a default pipeline model,
 *   2. use simulator feedback to explore operator variants,
 *   3. sweep the ALU family (mmul depth) with the timing model,
 *   4. pick core count for a throughput target under an area budget.
 * Every step is minutes, not a re-engineering cycle: the paper's
 * agility claim.
 */
#include <cstdio>

#include "dse/explorer.h"

using namespace finesse;

int
main()
{
    Explorer ex("BLS12-446");
    const CurveInfo &info = ex.framework().info();
    std::printf("target: %s (%d-bit p, security %d bits)\n\n",
                info.def.name.c_str(), info.logP(),
                info.def.securityBits);

    // Step 1: baseline point.
    CompileOptions base;
    const DsePoint p0 = ex.evaluate(base, 1, "baseline");
    std::printf("step 1  baseline: %zu instrs, %lld cycles, IPC %.2f, "
                "%.2f mm^2, %.1f us\n",
                p0.instrs, static_cast<long long>(p0.cycles), p0.ipc,
                p0.areaMm2, p0.latencyUs);

    // Step 2: operator-variant exploration (software axis).
    const DsePoint pv =
        ex.exploreVariants(base.hw, Objective::MinCycles, true);
    std::printf("step 2  variant search: best %lld cycles (%.1f%% "
                "faster)\n",
                static_cast<long long>(pv.cycles),
                100.0 * (1.0 - double(pv.cycles) / double(p0.cycles)));

    // Step 3: ALU-family sweep (hardware axis) on the best variants.
    const Module m = ex.framework().handle().trace(
        pv.variants, TracePart::Full, true, nullptr);
    double bestThpt = 0;
    int bestDepth = 0;
    for (int depth = 14; depth <= 44; depth += 3) {
        PipelineModel hw;
        hw.longLat = depth;
        const DsePoint p = ex.evaluateModule(m, hw, 1, "sweep");
        if (p.throughputOps > bestThpt) {
            bestThpt = p.throughputOps;
            bestDepth = depth;
        }
    }
    std::printf("step 3  ALU family sweep: best depth %d -> %.2f kops "
                "per core\n",
                bestDepth, bestThpt / 1e3);

    // Step 4: core-count selection under an area budget.
    PipelineModel hw;
    hw.longLat = bestDepth;
    const double areaBudget = 12.0; // mm^2
    int cores = 1;
    DsePoint chosen;
    for (int c = 1; c <= 32; c *= 2) {
        const DsePoint p = ex.evaluateModule(m, hw, c, "cores");
        if (p.areaMm2 > areaBudget)
            break;
        chosen = p;
        cores = c;
    }
    std::printf("step 4  core scaling: %d cores, %.2f mm^2, %.1f kops, "
                "%.2f kops/mm^2\n",
                cores, chosen.areaMm2, chosen.throughputOps / 1e3,
                chosen.thptPerArea / 1e3);

    std::printf("\nfinal configuration: %s | depth %d | %d cores | "
                "validated against the native library\n",
                info.def.name.c_str(), bestDepth, cores);

    // Final sanity: the chosen design still computes correct pairings.
    CompileOptions finalOpt;
    finalOpt.variants = pv.variants;
    finalOpt.hw = hw;
    const CompileResult res = ex.framework().compile(finalOpt);
    const ValidationReport rep = ex.framework().validate(res, 1);
    std::printf("functional validation: %s\n",
                rep.allPassed() ? "PASS" : "FAIL");
    return rep.allPassed() ? 0 : 1;
}
