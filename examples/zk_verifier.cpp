/**
 * @file
 * Groth16-style zero-knowledge proof verification on BN254N — the
 * SNARK workload that motivates pairing acceleration in the paper's
 * introduction (KZG, Groth16).
 *
 * The Groth16 verification equation is a product of three pairings:
 *   e(A, B) == e(alpha, beta) * e(L, gamma) * e(C, delta).
 * This example builds a synthetic-but-consistent instance: a trusted
 * setup picks toxic scalars; a "prover" constructs (A, B, C) satisfying
 *   a*b = alpha*beta + l*gamma + c*delta  (mod r)
 * and the verifier checks the pairing equation — exercising exactly
 * the multi-pairing accelerator workload.
 */
#include <cstdio>

#include "pairing/cache.h"

using namespace finesse;

int
main()
{
    const auto &sys = curveSystem12("BN254N");
    const BigInt &r = sys.info().r;
    Rng rng(2718);
    auto randScalar = [&] {
        return BigInt::randomBelow(rng, r - 1) + 1;
    };

    std::printf("Groth16-style verification on BN254N\n");

    // ---- trusted setup (toxic waste: alpha, beta, gamma, delta) ------
    const BigInt alpha = randScalar(), beta = randScalar();
    const BigInt gamma = randScalar(), delta = randScalar();
    const auto g1 = sys.g1Gen();
    const auto g2 = sys.g2Gen();
    const auto alphaG1 = scalarMul(sys.g1Curve(), g1, alpha);
    const auto betaG2 = scalarMul(sys.twistCurve(), g2, beta);
    const auto gammaG2 = scalarMul(sys.twistCurve(), g2, gamma);
    const auto deltaG2 = scalarMul(sys.twistCurve(), g2, delta);

    // ---- prover: pick a, b; public-input term l; solve for c ----------
    const BigInt a = randScalar(), b = randScalar(), l = randScalar();
    // c = (a*b - alpha*beta - l*gamma) / delta  (mod r)
    const BigInt c = ((a * b - alpha * beta - l * gamma).mod(r) *
                      delta.invMod(r))
                         .mod(r);
    const auto proofA = scalarMul(sys.g1Curve(), g1, a);
    const auto proofB = scalarMul(sys.twistCurve(), g2, b);
    const auto proofC = scalarMul(sys.g1Curve(), g1, c);
    const auto inputL = scalarMul(sys.g1Curve(), g1, l);

    // ---- verifier: product of four pairings ---------------------------
    auto gtOne = Fp12::one(sys.tower().gtCtx());
    const auto eAB = sys.pair(proofA, proofB);
    const auto eAlphaBeta = sys.pair(alphaG1, betaG2);
    const auto eLGamma = sys.pair(inputL, gammaG2);
    const auto eCDelta = sys.pair(proofC, deltaG2);
    const auto rhs = eAlphaBeta.mul(eLGamma).mul(eCDelta);
    const bool accept = eAB.equals(rhs);
    std::printf("verification equation e(A,B) == "
                "e(alpha,beta) e(L,gamma) e(C,delta): %s\n",
                accept ? "ACCEPT" : "REJECT");

    // ---- soundness check: a corrupted proof must fail ------------------
    const auto badC =
        scalarMul(sys.g1Curve(), g1, (c + BigInt(u64{1})).mod(r));
    const bool badAccept =
        eAB.equals(eAlphaBeta.mul(eLGamma).mul(sys.pair(badC, deltaG2)));
    std::printf("corrupted proof: %s\n",
                badAccept ? "ACCEPT (BUG!)" : "REJECT");

    // ---- the accelerator view ------------------------------------------
    // A verifier ASIC runs 4 pairings per proof; with the compiled
    // BN254N program this is 4 * cycles / frequency.
    std::printf("\n(accelerator view: one Groth16 verification = 4 "
                "pairings; see bench/table6_comparison for the "
                "per-pairing cycle cost)\n");
    (void)gtOne;
    return (accept && !badAccept) ? 0 : 1;
}
