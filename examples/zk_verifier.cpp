/**
 * @file
 * Groth16-style zero-knowledge proof verification on BN254N — the
 * SNARK workload that motivates pairing acceleration in the paper's
 * introduction (KZG, Groth16).
 *
 * The Groth16 verification equation is a product of three pairings:
 *   e(A, B) == e(alpha, beta) * e(L, gamma) * e(C, delta).
 * This example builds a synthetic-but-consistent instance: a trusted
 * setup picks toxic scalars; a "prover" constructs (A, B, C) satisfying
 *   a*b = alpha*beta + l*gamma + c*delta  (mod r)
 * and the verifier checks the pairing equation — exercising exactly
 * the multi-pairing accelerator workload.
 *
 * Verification is routed through the batch serving engine
 * (serve/engine.h): the honest proof and a corrupted one are
 * ZkRequests sharing one verification key, so the batch fuses into a
 * single random-linear-combination multi-pairing whose vk terms
 * merge (N proofs cost N + 3 Miller loops, not 4N) — the
 * `finesse_cli serve` path, driven from library code.
 */
#include <cstdio>

#include "serve/engine.h"

using namespace finesse;

int
main()
{
    const auto &sys = curveSystem12("BN254N");
    const BigInt &r = sys.info().r;
    Rng rng(2718);
    auto randScalar = [&] {
        return BigInt::randomBelow(rng, r - 1) + 1;
    };

    std::printf("Groth16-style verification on BN254N\n");

    // ---- trusted setup (toxic waste: alpha, beta, gamma, delta) ------
    const BigInt alpha = randScalar(), beta = randScalar();
    const BigInt gamma = randScalar(), delta = randScalar();
    const auto g1 = sys.g1Gen();
    const auto g2 = sys.g2Gen();
    const auto alphaG1 = scalarMul(sys.g1Curve(), g1, alpha);
    const auto betaG2 = scalarMul(sys.twistCurve(), g2, beta);
    const auto gammaG2 = scalarMul(sys.twistCurve(), g2, gamma);
    const auto deltaG2 = scalarMul(sys.twistCurve(), g2, delta);

    // ---- prover: pick a, b; public-input term l; solve for c ----------
    const BigInt a = randScalar(), b = randScalar(), l = randScalar();
    // c = (a*b - alpha*beta - l*gamma) / delta  (mod r)
    const BigInt c = ((a * b - alpha * beta - l * gamma).mod(r) *
                      delta.invMod(r))
                         .mod(r);
    const auto proofA = scalarMul(sys.g1Curve(), g1, a);
    const auto proofB = scalarMul(sys.twistCurve(), g2, b);
    const auto proofC = scalarMul(sys.g1Curve(), g1, c);
    const auto inputL = scalarMul(sys.g1Curve(), g1, l);

    // ---- verifier: the serving engine runs the pairing product --------
    ZkRequest proof;
    proof.proofA = proofA;
    proof.proofB = proofB;
    proof.proofC = proofC;
    proof.inputL = inputL;
    proof.alphaG1 = alphaG1;
    proof.betaG2 = betaG2;
    proof.gammaG2 = gammaG2;
    proof.deltaG2 = deltaG2;

    ZkRequest corrupted = proof;
    corrupted.proofC =
        scalarMul(sys.g1Curve(), g1, (c + BigInt(u64{1})).mod(r));

    ServeEngine engine(sys, ServeOptions{});
    auto fGood = engine.submit(proof).verdict;
    auto fBad = engine.submit(corrupted).verdict;
    const bool accept = fGood.get() == Verdict::Accept;
    const bool badAccept = fBad.get() == Verdict::Accept;
    std::printf("verification equation e(A,B) == "
                "e(alpha,beta) e(L,gamma) e(C,delta): %s\n",
                accept ? "ACCEPT" : "REJECT");
    std::printf("corrupted proof: %s\n",
                badAccept ? "ACCEPT (BUG!)" : "REJECT");

    // ---- the accelerator view ------------------------------------------
    // A verifier ASIC runs 4 pairings per solo proof; batch-served
    // proofs sharing this vk amortize to ~1 Miller loop each (N + 3
    // for N proofs) plus one final exponentiation per batch.
    engine.drain();
    const ServeCounters counters = engine.counters();
    std::printf("\n(accelerator view: %zu Miller loops across %zu "
                "batches for %zu proofs; see bench/fig_serve for the "
                "batched-throughput figure)\n",
                counters.pairings, counters.batches,
                counters.completed);
    return (accept && !badAccept) ? 0 : 1;
}
