/**
 * @file
 * KZG polynomial commitments on BLS12-381 — the other SNARK primitive
 * the paper's introduction motivates (Kate-Zaverucha-Goldberg, used by
 * EIP-4844 and most modern proof systems).
 *
 * Scheme:
 *   setup:   SRS = { [tau^i] g1 }_i, [tau] g2       (trusted setup)
 *   commit:  C = [f(tau)] g1 via the SRS
 *   open:    at z, witness pi = [q(tau)] g1 where
 *            q(X) = (f(X) - f(z)) / (X - z)
 *   verify:  e(C - [f(z)] g1, g2) == e(pi, [tau] g2 - [z] g2)
 */
#include <cstdio>
#include <vector>

#include "pairing/cache.h"

using namespace finesse;

namespace {

/** Polynomial over Zr, little-endian coefficients. */
struct Poly
{
    std::vector<BigInt> c;

    BigInt
    eval(const BigInt &x, const BigInt &r) const
    {
        BigInt acc;
        for (size_t i = c.size(); i-- > 0;)
            acc = (acc * x + c[i]).mod(r);
        return acc;
    }
};

/** Synthetic division: q(X) = (f(X) - f(z)) / (X - z). */
Poly
quotient(const Poly &f, const BigInt &z, const BigInt &r)
{
    Poly q;
    q.c.assign(f.c.size() - 1, BigInt());
    BigInt carry; // running coefficient of the division
    for (size_t i = f.c.size(); i-- > 1;) {
        carry = (f.c[i] + carry * z).mod(r);
        q.c[i - 1] = carry;
    }
    return q;
}

} // namespace

int
main()
{
    const auto &sys = curveSystem12("BLS12-381");
    const BigInt &r = sys.info().r;
    Rng rng(31415);
    auto randScalar = [&] { return BigInt::randomBelow(rng, r); };

    std::printf("KZG commitments on BLS12-381\n");

    // ---- trusted setup (degree < 8) ------------------------------------
    const int kDegree = 8;
    const BigInt tau = randScalar(); // toxic waste
    std::vector<AffinePt<Fp>> srs;
    BigInt tpow(u64{1});
    for (int i = 0; i < kDegree; ++i) {
        srs.push_back(scalarMul(sys.g1Curve(), sys.g1Gen(), tpow));
        tpow = (tpow * tau).mod(r);
    }
    const auto tauG2 = scalarMul(sys.twistCurve(), sys.g2Gen(), tau);

    // ---- commit ----------------------------------------------------------
    Poly f;
    for (int i = 0; i < kDegree; ++i)
        f.c.push_back(randScalar());
    auto msm = [&](const Poly &p) {
        // Multi-scalar multiplication over the SRS (schoolbook).
        AffinePt<Fp> acc = AffinePt<Fp>::atInfinity();
        for (size_t i = 0; i < p.c.size(); ++i) {
            acc = affineAdd(sys.g1Curve(), acc,
                            scalarMul(sys.g1Curve(), srs[i], p.c[i]));
        }
        return acc;
    };
    const auto C = msm(f);
    std::printf("committed to a degree-%d polynomial\n", kDegree - 1);

    // ---- open at z --------------------------------------------------------
    const BigInt z = randScalar();
    const BigInt y = f.eval(z, r);
    const Poly q = quotient(f, z, r);
    const auto pi = msm(q);

    // ---- verify: e(C - [y]g1, g2) == e(pi, [tau]g2 - [z]g2) ---------------
    const auto cMinusY = affineAdd(
        sys.g1Curve(), C,
        scalarMul(sys.g1Curve(), sys.g1Gen(), y).negate());
    const auto tauMinusZ = affineAdd(
        sys.twistCurve(), tauG2,
        scalarMul(sys.twistCurve(), sys.g2Gen(), z).negate());
    const bool ok =
        sys.pair(cMinusY, sys.g2Gen()).equals(sys.pair(pi, tauMinusZ));
    std::printf("open f(z) = y, verify: %s\n", ok ? "ACCEPT" : "REJECT");

    // ---- soundness: a wrong evaluation must fail --------------------------
    const BigInt yBad = (y + BigInt(u64{1})).mod(r);
    const auto cMinusBad = affineAdd(
        sys.g1Curve(), C,
        scalarMul(sys.g1Curve(), sys.g1Gen(), yBad).negate());
    const bool bad =
        sys.pair(cMinusBad, sys.g2Gen()).equals(sys.pair(pi, tauMinusZ));
    std::printf("tampered evaluation: %s\n",
                bad ? "ACCEPT (BUG!)" : "REJECT");

    // The verifier workload is exactly 2 pairings -> see the compiled
    // pairing program cost in bench/table6_comparison.
    return (ok && !bad) ? 0 : 1;
}
