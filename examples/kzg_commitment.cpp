/**
 * @file
 * KZG polynomial commitments on BLS12-381 — the other SNARK primitive
 * the paper's introduction motivates (Kate-Zaverucha-Goldberg, used by
 * EIP-4844 and most modern proof systems).
 *
 * Scheme:
 *   setup:   SRS = { [tau^i] g1 }_i, [tau] g2       (trusted setup)
 *   commit:  C = [f(tau)] g1 via the SRS
 *   open:    at z, witness pi = [q(tau)] g1 where
 *            q(X) = (f(X) - f(z)) / (X - z)
 *   verify:  e(C - [f(z)] g1, g2) == e(pi, [tau] g2 - [z] g2)
 *
 * Verification is routed through the batch serving engine
 * (serve/verify.h): the honest opening and a tampered evaluation are
 * KzgRequests, batch-verified as one random-linear-combination
 * multi-pairing whose terms all merge onto the two constant G2 bases
 * {g2, [tau]g2} — a whole batch of openings against one SRS costs
 * exactly 2 Miller loops and one final exponentiation.
 */
#include <cstdio>
#include <vector>

#include "serve/verify.h"

using namespace finesse;

namespace {

/** Polynomial over Zr, little-endian coefficients. */
struct Poly
{
    std::vector<BigInt> c;

    BigInt
    eval(const BigInt &x, const BigInt &r) const
    {
        BigInt acc;
        for (size_t i = c.size(); i-- > 0;)
            acc = (acc * x + c[i]).mod(r);
        return acc;
    }
};

/** Synthetic division: q(X) = (f(X) - f(z)) / (X - z). */
Poly
quotient(const Poly &f, const BigInt &z, const BigInt &r)
{
    Poly q;
    q.c.assign(f.c.size() - 1, BigInt());
    BigInt carry; // running coefficient of the division
    for (size_t i = f.c.size(); i-- > 1;) {
        carry = (f.c[i] + carry * z).mod(r);
        q.c[i - 1] = carry;
    }
    return q;
}

} // namespace

int
main()
{
    const auto &sys = curveSystem12("BLS12-381");
    const BigInt &r = sys.info().r;
    Rng rng(31415);
    auto randScalar = [&] { return BigInt::randomBelow(rng, r); };

    std::printf("KZG commitments on BLS12-381\n");

    // ---- trusted setup (degree < 8) ------------------------------------
    const int kDegree = 8;
    const BigInt tau = randScalar(); // toxic waste
    std::vector<AffinePt<Fp>> srs;
    BigInt tpow(u64{1});
    for (int i = 0; i < kDegree; ++i) {
        srs.push_back(scalarMul(sys.g1Curve(), sys.g1Gen(), tpow));
        tpow = (tpow * tau).mod(r);
    }
    const auto tauG2 = scalarMul(sys.twistCurve(), sys.g2Gen(), tau);

    // ---- commit ----------------------------------------------------------
    Poly f;
    for (int i = 0; i < kDegree; ++i)
        f.c.push_back(randScalar());
    auto msm = [&](const Poly &p) {
        // Multi-scalar multiplication over the SRS (schoolbook).
        AffinePt<Fp> acc = AffinePt<Fp>::atInfinity();
        for (size_t i = 0; i < p.c.size(); ++i) {
            acc = affineAdd(sys.g1Curve(), acc,
                            scalarMul(sys.g1Curve(), srs[i], p.c[i]));
        }
        return acc;
    };
    const auto C = msm(f);
    std::printf("committed to a degree-%d polynomial\n", kDegree - 1);

    // ---- open at z --------------------------------------------------------
    const BigInt z = randScalar();
    const BigInt y = f.eval(z, r);
    const Poly q = quotient(f, z, r);
    const auto pi = msm(q);

    // ---- verify through the serving engine ---------------------------------
    // Honest opening and a tampered evaluation, batched: one RLC
    // product over the shared G2 bases decides both.
    KzgRequest honest;
    honest.commitment = C;
    honest.z = z;
    honest.y = y;
    honest.proof = pi;
    honest.tauG2 = tauG2;

    KzgRequest forged = honest;
    forged.y = (y + BigInt(u64{1})).mod(r);

    BatchVerifyStats stats;
    const std::vector<PairingCheck> checks = {
        reduceToCheck(sys, honest), reduceToCheck(sys, forged)};
    const std::vector<bool> verdicts = verifyBatch(sys, checks, 1, &stats);
    const bool ok = verdicts[0];
    const bool bad = verdicts[1];
    std::printf("open f(z) = y, verify: %s\n", ok ? "ACCEPT" : "REJECT");
    std::printf("tampered evaluation: %s\n",
                bad ? "ACCEPT (BUG!)" : "REJECT");

    // The batched verifier workload stays 2 Miller loops no matter the
    // batch size (both terms merge onto {g2, [tau]g2}); the bisection
    // fallback here re-checks the halves, still on 2 bases each.
    std::printf("batch stats: %zu products, %zu Miller loops, "
                "%zu bisect splits\n",
                stats.products, stats.pairings, stats.bisectSplits);
    return (ok && !bad) ? 0 : 1;
}
