/**
 * @file
 * Quickstart: the full Finesse agile flow in ~80 lines.
 *
 *  1. Pick a curve from the catalog.
 *  2. Compute a pairing natively and check bilinearity.
 *  3. Compile the pairing to an accelerator program (CodeGen -> IROpt
 *     -> BankAlloc -> PackSched -> RegAlloc -> ASM/Link).
 *  4. Cross-validate the compiled program on the functional simulator.
 *  5. Evaluate cycles / area / frequency with the co-design models.
 */
#include <cstdio>

#include "core/framework.h"
#include "pairing/cache.h"
#include "sim/functional.h"

using namespace finesse;

int
main()
{
    // --- 1. The curve -----------------------------------------------------
    const char *curveName = "BN254N";
    Framework fw(curveName);
    const CurveInfo &info = fw.info();
    std::printf("curve %s: %d-bit p, %d-bit r, k = %d\n",
                info.def.name.c_str(), info.logP(), info.logR(), info.k);

    // --- 2. Native pairing + bilinearity ----------------------------------
    const auto &sys = curveSystem12(curveName);
    Rng rng(1);
    const auto P = sys.randomG1(rng);
    const auto Q = sys.randomG2(rng);
    const auto e = sys.pair(P, Q);

    const BigInt a(u64{123456789});
    const auto aP = scalarMul(sys.g1Curve(), P, a);
    const bool bilinear = sys.pair(aP, Q).equals(powBig(e, a));
    std::printf("bilinearity e([a]P, Q) == e(P, Q)^a: %s\n",
                bilinear ? "OK" : "FAILED");

    // --- 3. Compile to an accelerator program ------------------------------
    CompileOptions opt; // defaults: Karatsuba variants, L=38/S=8 model
    const CompileResult res = fw.compile(opt);
    std::printf("compiled: %zu instructions (%.1f%% removed by IROpt), "
                "%zu-bundle binary, %.2f s\n",
                res.instrs(), res.opt.reductionPct(),
                res.binary.numBundles, res.compileSeconds);
    std::printf("binary head:\n%s",
                res.binary.disassemble(6).c_str());

    // --- 4. Cross-validate against the native library ----------------------
    const ValidationReport rep = fw.validate(res, 3);
    std::printf("functional validation: %d/%d (SSA), %d/%d (register "
                "file)\n",
                rep.moduleMatches, rep.vectors, rep.allocatedMatches,
                rep.vectors);

    // --- 5. Co-design feedback ---------------------------------------------
    const CycleStats sim = fw.simulate(res);
    const AreaReport area = fw.area(res, 8);
    TimingModel timing;
    const double mhz = timing.frequencyMHz(info.logP(), opt.hw.longLat);
    std::printf("cycle-accurate: %lld cycles, IPC %.2f\n",
                static_cast<long long>(sim.totalCycles), sim.ipc());
    std::printf("8-core accelerator: %.2f mm^2 @ %.0f MHz -> %.1f kops, "
                "%.2f kops/mm^2\n",
                area.totalArea, mhz,
                8 * mhz * 1e3 / double(sim.totalCycles),
                8 * mhz * 1e3 / double(sim.totalCycles) /
                    area.totalArea);
    return bilinear && rep.allPassed() ? 0 : 1;
}
