/**
 * @file
 * Figure 4 walkthrough: cross-layer IR mapping with variant
 * specification. An fp12 multiplication is lowered to the fp6 level
 * with the Karatsuba variant (the paper's exact example), then with
 * Schoolbook for comparison, and finally the same operation is lowered
 * all the way to Fp-level machine operations by the production tracer.
 */
#include <cstdio>

#include "compiler/symfp.h"
#include "field/tower.h"
#include "ir/hir.h"
#include "pairing/cache.h"

using namespace finesse;

int
main()
{
    // ---- Figure 4: fp12.mul at the fp12 level -------------------------
    HirModule top;
    const HirType fp12{HirType::Kind::Field, 12};
    const i32 a = top.input(fp12);
    const i32 b = top.input(fp12);
    const i32 res = top.emit(HirOp::Mul, fp12, a, b);
    top.outputs.push_back(res);
    top.verify();
    std::printf("fp12-level IR:\n%s\n", top.print().c_str());

    std::printf("map_lowering[op: fp12.mul, variant: karatsuba] "
                "-> fp6-level IR:\n");
    const HirModule karat = lowerQuadLevel(
        top, 12, {MulVariant::Karatsuba, SqrVariant::Complex});
    std::printf("%s\n", karat.print().c_str());

    std::printf("map_lowering[op: fp12.mul, variant: schoolbook] "
                "-> fp6-level IR:\n");
    const HirModule school = lowerQuadLevel(
        top, 12, {MulVariant::Schoolbook, SqrVariant::Schoolbook});
    std::printf("%s\n", school.print().c_str());

    // ---- All the way down: Fp-level machine code ----------------------
    // The production compiler lowers by re-tracing the shared formula
    // templates over the symbolic base field.
    const auto &sys = curveSystem12("BN254N");
    TraceBuilder tb(sys.info().p);
    SymFp::Ctx sctx{&tb};
    Tower12<SymFp> tower;
    buildTower(tower, &sctx, sys.towerParams(), VariantConfig{});
    using SFp12 = Tower12<SymFp>::Fp12T;

    auto mkInput = [&] {
        auto supply = [&] { return SymFp{tb.input(), &sctx}; };
        std::vector<SymFp> leaves;
        for (int i = 0; i < 12; ++i)
            leaves.push_back(supply());
        auto it = leaves.begin();
        std::function<SymFp()> next = [&] { return *it++; };
        // Assemble coefficients bottom-up.
        using SFp2 = Tower12<SymFp>::Fp2T;
        using SFp6 = Tower12<SymFp>::Fp6T;
        auto f2 = [&] {
            SymFp x = next(), y = next();
            return SFp2{x, y, &tower.fp2};
        };
        auto f6 = [&] {
            SFp2 x = f2(), y = f2(), z = f2();
            return SFp6{x, y, z, &tower.fp6};
        };
        SFp6 lo = f6(), hi = f6();
        return SFp12{lo, hi, &tower.fp12};
    };
    const SFp12 x = mkInput();
    const SFp12 y = mkInput();
    const SFp12 z = x.mul(y);
    forEachLeaf(z, [&](const SymFp &leaf) { tb.output(leaf.id()); });
    Module m = tb.finish();
    std::printf("Fp-level lowering of one fp12.mul (all-Karatsuba): "
                "%zu machine ops (%zu MUL, %zu linear)\n",
                m.size(), m.countUnit(UnitClass::Mul),
                m.countUnit(UnitClass::Linear) - 36 /* cvt/icv */);
    std::printf("%s", m.print(10).c_str());
    return 0;
}
