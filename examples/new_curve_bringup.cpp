/**
 * @file
 * Agility demonstration (paper Sec. 4.5, "For Pairing Researchers"):
 * bring up a accelerator for a curve that is NOT in the catalog, end
 * to end, in seconds.
 *
 * A researcher proposes new BN parameters (say, a small-field variant
 * for protocol experimentation). The framework:
 *   1. searches a fresh family parameter x with prime p, r;
 *   2. derives tower, twist, cofactors, generators, pairing plan —
 *      verifying each (irreducibility, chain exponents, orders);
 *   3. checks bilinearity natively;
 *   4. compiles the accelerator program and cross-validates it.
 * No hand-derived constants anywhere: exactly the re-engineering cost
 * the framework eliminates.
 */
#include <chrono>
#include <cstdio>

#include "compiler/codegen.h"
#include "core/framework.h"
#include "sim/functional.h"

using namespace finesse;

int
main()
{
    const auto start = std::chrono::steady_clock::now();
    auto elapsed = [&] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };

    // 1. A fresh BN parameter: ~2^30 scale (fast demo field).
    std::printf("searching new BN family parameter...\n");
    CurveDef def;
    def.name = "BN-demo";
    def.family = CurveFamily::BN;
    def.securityBits = 0; // research toy, not a security claim
    for (u64 m = (u64{1} << 30) + 1;; ++m) {
        const BigInt x = -BigInt(m);
        const BigInt x2 = x * x;
        const BigInt p = BigInt(u64{36}) * x2 * x2 +
                         BigInt(u64{36}) * x2 * x +
                         BigInt(u64{24}) * x2 + BigInt(u64{6}) * x +
                         BigInt(u64{1});
        const BigInt t = BigInt(u64{6}) * x2 + BigInt(u64{1});
        const BigInt r = p + BigInt(u64{1}) - t;
        if ((p % BigInt(u64{6})) == BigInt(u64{1}) &&
            isProbablePrime(p, 8) && isProbablePrime(r, 8)) {
            def.x = x;
            std::printf("  found x = -0x%llx  (%d-bit p) after %.2f s\n",
                        static_cast<unsigned long long>(m),
                        p.bitLength(), elapsed());
            break;
        }
    }

    // 2+3. Full bring-up: tower, twist, generators, verified plan.
    CurveSystem12 sys(def);
    std::printf("bring-up complete at %.2f s: b = %lld, %s-type twist, "
                "hard part = %s\n",
                elapsed(), static_cast<long long>(sys.b()),
                toString(sys.twistType()), toString(sys.plan().hard));

    Rng rng(8);
    const auto P = sys.randomG1(rng);
    const auto Q = sys.randomG2(rng);
    const auto e = sys.pair(P, Q);
    const BigInt a(u64{987654321});
    const auto aP = scalarMul(sys.g1Curve(), P, a);
    const bool bilinear = sys.pair(aP, Q).equals(powBig(e, a));
    std::printf("native bilinearity: %s (%.2f s)\n",
                bilinear ? "OK" : "FAILED", elapsed());

    // 4. Compile the accelerator and cross-validate.
    Module m = tracePairing12(sys, VariantConfig{});
    optimizeModule(m);
    const CompileResult res = runBackend(std::move(m), PipelineModel{});
    const CycleStats sim = simulateCycles(res.prog);
    std::printf("compiled: %zu instrs, %lld cycles, IPC %.2f (%.2f s)\n",
                res.instrs(), static_cast<long long>(sim.totalCycles),
                sim.ipc(), elapsed());

    // Cross-validation against the native engine.
    std::vector<BigInt> inputs;
    P.x.toFpCoeffs(inputs);
    P.y.toFpCoeffs(inputs);
    Q.x.toFpCoeffs(inputs);
    Q.y.toFpCoeffs(inputs);
    std::vector<BigInt> want;
    e.toFpCoeffs(want);
    FpCtx fp(sys.info().p);
    const bool simOk = runAllocated(res.prog, fp, inputs) == want;
    std::printf("compiled-vs-native validation: %s\n",
                simOk ? "PASS" : "FAIL");
    std::printf("\nnew curve, zero hand-derived constants, %.2f s "
                "total: the paper's agility claim.\n",
                elapsed());
    return (bilinear && simOk) ? 0 : 1;
}
