/**
 * @file
 * BLS short signatures (Boneh-Lynn-Shacham) on BLS12-381 using the
 * Finesse native library — one of the motivating applications from the
 * paper's introduction.
 *
 * Scheme (signatures in G1, public keys in G2):
 *   keygen:  sk <- Zr,  pk = [sk] g2
 *   sign:    sigma = [sk] H(m)          (H: message -> G1)
 *   verify:  e(sigma, g2) == e(H(m), pk)
 *
 * The message hash uses deterministic try-and-increment onto the curve
 * (research-grade; production systems use hash-to-curve standards).
 */
#include <cstdio>
#include <string>

#include "pairing/cache.h"

using namespace finesse;

namespace {

/** FNV-1a based expandable hash to an Fp element (demo quality). */
BigInt
hashToFp(const std::string &msg, const BigInt &p, u64 counter)
{
    u64 h = 1469598103934665603ull ^ counter;
    BigInt acc;
    for (int block = 0; block < 6; ++block) {
        for (char c : msg) {
            h ^= static_cast<u8>(c);
            h *= 1099511628211ull;
        }
        h ^= block + counter * 0x9e3779b97f4a7c15ull;
        h *= 1099511628211ull;
        acc = (acc << 64) + BigInt(h);
    }
    return acc.mod(p);
}

/** Try-and-increment hash onto G1 (cofactor cleared). */
AffinePt<Fp>
hashToG1(const CurveSystem12 &sys, const std::string &msg)
{
    const BigInt &p = sys.info().p;
    Rng sampler(42);
    std::function<Fp()> sample = [&] {
        return Fp::fromBig(&sys.fpCtx(), BigInt::randomBelow(sampler, p));
    };
    for (u64 ctr = 0;; ++ctr) {
        const Fp x = Fp::fromBig(&sys.fpCtx(), hashToFp(msg, p, ctr));
        const Fp rhs = x.sqr().mul(x).add(sys.g1Curve().b);
        Fp y = Fp::zero(&sys.fpCtx());
        if (!trySqrt<Fp>(rhs, p, sample, y) || y.isZero())
            continue;
        auto pt = AffinePt<Fp>::make(x, y);
        pt = scalarMul(sys.g1Curve(), pt, sys.g1Cofactor());
        if (!pt.infinity)
            return pt;
    }
}

} // namespace

int
main()
{
    const auto &sys = curveSystem12("BLS12-381");
    Rng rng(7);
    const BigInt &r = sys.info().r;

    // keygen
    const BigInt sk = BigInt::randomBelow(rng, r - 1) + 1;
    const auto pk = scalarMul(sys.twistCurve(), sys.g2Gen(), sk);
    std::printf("BLS signatures on BLS12-381 (sig in G1, pk in G2)\n");

    // sign
    const std::string msg = "finesse: agile pairing accelerator design";
    const auto hm = hashToG1(sys, msg);
    const auto sigma = scalarMul(sys.g1Curve(), hm, sk);

    // verify: e(sigma, g2) == e(H(m), pk)
    const auto lhs = sys.pair(sigma, sys.g2Gen());
    const auto rhs = sys.pair(hm, pk);
    const bool ok = lhs.equals(rhs);
    std::printf("verify(\"%s\"): %s\n", msg.c_str(),
                ok ? "ACCEPT" : "REJECT");

    // tampered message must fail
    const auto hBad = hashToG1(sys, msg + "!");
    const bool bad = sys.pair(hBad, pk).equals(lhs);
    std::printf("verify(tampered): %s\n", bad ? "ACCEPT (BUG!)" : "REJECT");

    // wrong key must fail
    const BigInt sk2 = BigInt::randomBelow(rng, r - 1) + 1;
    const auto pk2 = scalarMul(sys.twistCurve(), sys.g2Gen(), sk2);
    const bool wrongKey = sys.pair(hm, pk2).equals(lhs);
    std::printf("verify(wrong key): %s\n",
                wrongKey ? "ACCEPT (BUG!)" : "REJECT");

    return (ok && !bad && !wrongKey) ? 0 : 1;
}
