/**
 * @file
 * BLS short signatures (Boneh-Lynn-Shacham) on BLS12-381 using the
 * Finesse native library — one of the motivating applications from the
 * paper's introduction.
 *
 * Scheme (signatures in G1, public keys in G2):
 *   keygen:  sk <- Zr,  pk = [sk] g2
 *   sign:    sigma = [sk] H(m)          (H: message -> G1)
 *   verify:  e(sigma, g2) == e(H(m), pk)
 *
 * Verification is routed through the batch serving engine
 * (serve/engine.h): the three checks below — a valid signature, a
 * tampered message and a wrong key — are submitted as BlsRequests and
 * fused into ONE random-linear-combination multi-pairing, with the
 * engine's bisection fallback pinpointing the two invalid ones. This
 * is the `finesse_cli serve` path, driven from library code.
 *
 * The message hash uses deterministic try-and-increment onto the curve
 * (research-grade; production systems use hash-to-curve standards).
 */
#include <cstdio>
#include <string>

#include "serve/engine.h"

using namespace finesse;

namespace {

/** FNV-1a based expandable hash to an Fp element (demo quality). */
BigInt
hashToFp(const std::string &msg, const BigInt &p, u64 counter)
{
    u64 h = 1469598103934665603ull ^ counter;
    BigInt acc;
    for (int block = 0; block < 6; ++block) {
        for (char c : msg) {
            h ^= static_cast<u8>(c);
            h *= 1099511628211ull;
        }
        h ^= block + counter * 0x9e3779b97f4a7c15ull;
        h *= 1099511628211ull;
        acc = (acc << 64) + BigInt(h);
    }
    return acc.mod(p);
}

/** Try-and-increment hash onto G1 (cofactor cleared). */
AffinePt<Fp>
hashToG1(const CurveSystem12 &sys, const std::string &msg)
{
    const BigInt &p = sys.info().p;
    Rng sampler(42);
    std::function<Fp()> sample = [&] {
        return Fp::fromBig(&sys.fpCtx(), BigInt::randomBelow(sampler, p));
    };
    for (u64 ctr = 0;; ++ctr) {
        const Fp x = Fp::fromBig(&sys.fpCtx(), hashToFp(msg, p, ctr));
        const Fp rhs = x.sqr().mul(x).add(sys.g1Curve().b);
        Fp y = Fp::zero(&sys.fpCtx());
        if (!trySqrt<Fp>(rhs, p, sample, y) || y.isZero())
            continue;
        auto pt = AffinePt<Fp>::make(x, y);
        pt = scalarMul(sys.g1Curve(), pt, sys.g1Cofactor());
        if (!pt.infinity)
            return pt;
    }
}

} // namespace

int
main()
{
    const auto &sys = curveSystem12("BLS12-381");
    Rng rng(7);
    const BigInt &r = sys.info().r;

    // keygen
    const BigInt sk = BigInt::randomBelow(rng, r - 1) + 1;
    const auto pk = scalarMul(sys.twistCurve(), sys.g2Gen(), sk);
    std::printf("BLS signatures on BLS12-381 (sig in G1, pk in G2)\n");

    // sign
    const std::string msg = "finesse: agile pairing accelerator design";
    const auto hm = hashToG1(sys, msg);
    const auto sigma = scalarMul(sys.g1Curve(), hm, sk);

    // Three verification requests for the serving engine: the honest
    // one and two forgeries.
    BlsRequest good;
    good.signature = sigma;
    good.msgHash = hm;
    good.publicKey = pk;

    BlsRequest tampered = good; // signature over a different message
    tampered.msgHash = hashToG1(sys, msg + "!");

    BlsRequest wrongKey = good; // verified against someone else's pk
    const BigInt sk2 = BigInt::randomBelow(rng, r - 1) + 1;
    wrongKey.publicKey = scalarMul(sys.twistCurve(), sys.g2Gen(), sk2);

    ServeOptions opt;
    opt.batchSize = 4; // all three fuse into one multi-pairing
    ServeEngine engine(sys, opt);
    auto fGood = engine.submit(good).verdict;
    auto fTampered = engine.submit(tampered).verdict;
    auto fWrongKey = engine.submit(wrongKey).verdict;

    const bool ok = fGood.get() == Verdict::Accept;
    const bool bad = fTampered.get() == Verdict::Accept;
    const bool badKey = fWrongKey.get() == Verdict::Accept;
    std::printf("verify(\"%s\"): %s\n", msg.c_str(),
                ok ? "ACCEPT" : "REJECT");
    std::printf("verify(tampered): %s\n", bad ? "ACCEPT (BUG!)" : "REJECT");
    std::printf("verify(wrong key): %s\n",
                badKey ? "ACCEPT (BUG!)" : "REJECT");

    engine.drain();
    const ServeCounters c = engine.counters();
    std::printf("serving engine: %zu requests, %zu batches, %zu Miller "
                "loops, %zu bisect splits\n",
                c.completed, c.batches, c.pairings, c.bisectSplits);

    return (ok && !bad && !badKey) ? 0 : 1;
}
